//! The epoch-batched fleet scheduler.
//!
//! A [`Fleet`] owns one [`MemconEngine`] per shard, each mid-way through a
//! stepped run (`begin_run` / `advance_until` / `finish_run`). Every
//! [`Fleet::run_epoch`] call advances **all** shards to the next epoch
//! boundary — `epoch × epoch_quanta × quantum` on the shared fleet clock —
//! fanning the per-shard work across the [`memutil::par`] pool, then
//! applies cross-shard bookkeeping in deterministic shard order.
//!
//! Shards live behind per-shard mutexes so the pool's `Fn` closures can
//! step them; `ordered_map_with` hands each index to exactly one worker
//! per epoch, so the locks are uncontended — they exist to satisfy the
//! shared-reference contract, not to serialize.

use std::sync::{Arc, Mutex};

use memcon::engine::{LiveStats, MemconEngine, MemconReport, RecoveryStats};
use memcon::refreshmgr::PageState;
use memcon::testengine::{ContentOracle, FailureOracle, RateOracle};
use memutil::par;
use store::{Record, Store, StoreError};

use crate::durable::{self, EpochEntry, FleetMeta, FleetRecovery};
use crate::report::{FleetReport, LatencySummary, ShardSummary};
use crate::{FleetOracle, FleetPlan, ShardSpec};

/// Microsecond-scale bucket edges of the per-shard step-latency histogram
/// (`fleet.step.latency_us`, timing class).
pub const STEP_LATENCY_EDGES_US: [u64; 9] = [50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000];

/// One simulated DIMM mid-run.
#[derive(Debug)]
struct Shard {
    spec: ShardSpec,
    engine: MemconEngine,
    /// Set once the shard's trace horizon is reached and its run finished.
    report: Option<MemconReport>,
    /// Epoch at which the shard finished (cross-shard roll-up state).
    done_epoch: Option<u64>,
    /// Wall-clock nanoseconds of each epoch step (timing class only).
    step_latency_ns: Vec<u64>,
    /// Live-stats snapshot at the previous epoch boundary, so the
    /// post-barrier observability flush emits per-epoch deltas.
    last_live: LiveStats,
}

/// A running fleet: per-shard engines plus the epoch clock.
#[derive(Debug)]
pub struct Fleet {
    shards: Vec<Mutex<Shard>>,
    /// Epochs completed so far.
    epoch: u64,
    /// Fleet-clock nanoseconds per epoch.
    epoch_ns: u64,
    /// Longest shard trace horizon, ns.
    horizon_ns: u64,
    seed: u64,
    epoch_quanta: u64,
    /// Armed SLO monitor, evaluated post-barrier on every epoch sample.
    /// Shared behind a mutex so a scrape endpoint can serve `HEALTH`
    /// while the fleet runs.
    health: Option<Arc<Mutex<telemetry::HealthMonitor>>>,
    /// Fleet meta store (epoch-log journal + barrier snapshots), when the
    /// fleet is durable.
    meta: Option<Store>,
    /// First meta-store failure: the fleet-level durability plane goes
    /// quiet from that point (shard stores latch independently).
    meta_error: Option<StoreError>,
    /// Per-epoch observability entries — the durable epoch log.
    epoch_log: Vec<EpochEntry>,
}

impl Fleet {
    /// Instantiates engines for every shard of `plan` and begins their
    /// runs. Cheap relative to [`FleetPlan::expand`]: traces are shared by
    /// `Arc`, and shards of one chip-seed group share the chip's immutable
    /// state (scrambler tables, vulnerable-cell cache) through clones of a
    /// per-group template rather than rebuilding it per shard.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty (checked at expansion), or if the
    /// configured store directory cannot be created (an environment
    /// failure, like the trace-synthesis panics at expansion).
    #[must_use]
    pub fn new(plan: &FleetPlan) -> Fleet {
        let config = &plan.config;
        let quantum_ns = (config.engine.quantum_ms * 1e6) as u64;
        let templates = ContentTemplates::build(plan);
        let shards: Vec<Mutex<Shard>> = plan
            .shards
            .iter()
            .map(|spec| {
                let oracle: Box<dyn FailureOracle> = match config.oracle {
                    FleetOracle::Rate { fail_rate } => {
                        Box::new(RateOracle::new(fail_rate, spec.chip_seed))
                    }
                    FleetOracle::Content { .. } => {
                        Box::new(templates.oracle(spec, config.engine.lo_ms))
                    }
                };
                let mut engine =
                    MemconEngine::with_oracle(config.engine, spec.trace.n_pages(), oracle);
                engine.set_fault_plan(spec.fault_plan.clone());
                if let Some(base) = &config.store_dir {
                    // Snapshot cadence = epoch_quanta: every shard
                    // publishes a snapshot exactly at each epoch barrier.
                    let store =
                        Store::create(&durable::shard_dir(base, spec.node), config.durability)
                            // memlint: allow(no-unwrap): an uncreatable store directory is an environment failure, like trace synthesis
                            .expect("per-shard store directory must be creatable");
                    engine
                        .attach_store(store, config.epoch_quanta)
                        // memlint: allow(no-unwrap): validate() rejects every config attach_store can refuse
                        .expect("rate oracles always persist (validate() rejects content+store)");
                }
                engine.begin_run(&spec.trace);
                Mutex::new(Shard {
                    spec: spec.clone(),
                    engine,
                    report: None,
                    done_epoch: None,
                    step_latency_ns: Vec::new(),
                    last_live: LiveStats::default(),
                })
            })
            .collect();
        let meta = config.store_dir.as_ref().map(|base| {
            let mut meta = Store::create(&durable::meta_dir(base), config.durability)
                // memlint: allow(no-unwrap): an uncreatable store directory is an environment failure, like trace synthesis
                .expect("fleet meta store directory must be creatable");
            // Anchor meta snapshot: a crash before the first barrier still
            // recovers (epoch 0, empty log, default cursors).
            let anchor = FleetMeta {
                epoch: 0,
                entries: Vec::new(),
                last_live: vec![LiveStats::default(); shards.len()],
            };
            meta.publish_snapshot(&anchor.encode())
                // memlint: allow(no-unwrap): a store that cannot take its first snapshot is unusable — die loudly
                .expect("anchor meta snapshot must publish");
            meta
        });
        let horizon_ns = plan
            .shards
            .iter()
            .map(|s| s.trace.duration_ns())
            .max()
            .unwrap_or(0);
        Fleet {
            shards,
            epoch: 0,
            epoch_ns: quantum_ns.saturating_mul(config.epoch_quanta).max(1),
            horizon_ns,
            seed: config.seed,
            epoch_quanta: config.epoch_quanta,
            health: None,
            meta,
            meta_error: None,
            epoch_log: Vec::new(),
        }
    }

    /// Recovers a durable fleet from `plan.config.store_dir` at its last
    /// epoch barrier: opens the meta store, replays the epoch log through
    /// the telemetry registry (restoring the `fleet.obs.*` counters and
    /// the time-series ring byte-identically), then recovers every shard
    /// engine from its own store across `jobs` workers. The caller
    /// resumes with [`Fleet::run_epoch`] / [`Fleet::run_to_completion`]
    /// exactly as the crashed process would have; the health monitor is
    /// not restored — re-arm one with [`Fleet::set_health_monitor`].
    ///
    /// `plan` must be the same expansion the crashed fleet ran (plans are
    /// pure functions of the config, so re-expanding the config is
    /// enough).
    ///
    /// # Errors
    ///
    /// [`StoreError::Unsupported`] when the config names no store
    /// directory or the on-disk fleet already finished its runs;
    /// [`StoreError::Corrupt`] when the meta snapshot is unusable or
    /// disagrees with the plan's shard count; any [`StoreError`] from
    /// opening the underlying stores.
    pub fn recover(plan: &FleetPlan, jobs: usize) -> Result<(Fleet, FleetRecovery), StoreError> {
        let config = &plan.config;
        let Some(base) = &config.store_dir else {
            return Err(StoreError::Unsupported(
                "fleet config names no durable store directory".to_string(),
            ));
        };
        let quantum_ns = (config.engine.quantum_ms * 1e6) as u64;
        let (meta_store, meta_rec) =
            Store::open(&durable::meta_dir(base), config.durability, None)?;
        let snap = meta_rec.snapshot.as_ref().ok_or_else(|| {
            StoreError::Corrupt("fleet meta store holds no usable snapshot".to_string())
        })?;
        let meta = FleetMeta::decode(&snap.payload).map_err(StoreError::Corrupt)?;
        if meta.last_live.len() != plan.shards.len() {
            return Err(StoreError::Corrupt(format!(
                "meta snapshot tracks {} shards but the plan expands {}",
                meta.last_live.len(),
                plan.shards.len()
            )));
        }
        // Replay the epoch log through the *same* emission path the live
        // barriers use, before any fresh barrier runs.
        for entry in &meta.entries {
            let _ = durable::emit_epoch_entry(entry);
        }
        let recovered: Vec<Result<(MemconEngine, store::Recovered), StoreError>> =
            par::ordered_map_with(jobs, plan.shards.len(), |i| {
                MemconEngine::recover(
                    &durable::shard_dir(base, plan.shards[i].node),
                    config.durability,
                    None,
                )
            });
        let mut totals = FleetRecovery {
            epochs_replayed: meta.entries.len() as u64,
            replayed_records: meta_rec.replayed_records,
            truncated_bytes: meta_rec.truncated_bytes,
            snapshots_skipped: meta_rec.snapshots_skipped,
            stale_segments: meta_rec.stale_segments,
            ..FleetRecovery::default()
        };
        let mut shards = Vec::with_capacity(plan.shards.len());
        for (i, result) in recovered.into_iter().enumerate() {
            let (engine, rec) = result?;
            if !engine.mid_run() {
                return Err(StoreError::Unsupported(format!(
                    "shard {i} already finished its run; a completed fleet cannot resume"
                )));
            }
            totals.shards_recovered += 1;
            totals.replayed_records += rec.replayed_records;
            totals.truncated_bytes += rec.truncated_bytes;
            totals.snapshots_skipped += rec.snapshots_skipped;
            totals.stale_segments += rec.stale_segments;
            shards.push(Mutex::new(Shard {
                spec: plan.shards[i].clone(),
                engine,
                report: None,
                done_epoch: None,
                step_latency_ns: Vec::new(),
                last_live: meta.last_live[i],
            }));
        }
        let horizon_ns = plan
            .shards
            .iter()
            .map(|s| s.trace.duration_ns())
            .max()
            .unwrap_or(0);
        let fleet = Fleet {
            shards,
            epoch: meta.epoch,
            epoch_ns: quantum_ns.saturating_mul(config.epoch_quanta).max(1),
            horizon_ns,
            seed: config.seed,
            epoch_quanta: config.epoch_quanta,
            health: None,
            meta: Some(meta_store),
            meta_error: None,
            epoch_log: meta.entries,
        };
        Ok((fleet, totals))
    }

    /// The first meta-store failure of this fleet's lifetime, if any.
    #[must_use]
    pub fn meta_store_error(&self) -> Option<&StoreError> {
        self.meta_error.as_ref()
    }

    /// Arms an SLO monitor: every epoch's post-barrier sample point is
    /// evaluated against its rules. Pass a shared handle when a scrape
    /// endpoint should serve `HEALTH` concurrently.
    pub fn set_health_monitor(&mut self, monitor: Arc<Mutex<telemetry::HealthMonitor>>) {
        self.health = Some(monitor);
    }

    /// The armed SLO monitor, if any.
    #[must_use]
    pub fn health_monitor(&self) -> Option<&Arc<Mutex<telemetry::HealthMonitor>>> {
        self.health.as_ref()
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet has no shards (never true for expanded plans).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether every shard has finished its run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.epoch > 0 && self.epoch.saturating_mul(self.epoch_ns) >= self.horizon_ns
    }

    /// Advances every shard one epoch across `jobs` workers (`0` =
    /// resolve automatically), then applies cross-shard bookkeeping in
    /// shard order. Returns `true` while work remains.
    ///
    /// Shard advancement commutes (disjoint state; telemetry adds are
    /// atomic), so results are byte-identical at any `jobs` value.
    ///
    /// # Panics
    ///
    /// Panics if a shard engine panics (poisoned shard lock).
    pub fn run_epoch(&mut self, jobs: usize) -> bool {
        if self.is_done() {
            return false;
        }
        self.epoch += 1;
        let _epoch_span = telemetry::tree_span("fleet.epoch");
        telemetry::annotate("epoch", self.epoch);
        let limit = self.epoch.saturating_mul(self.epoch_ns);
        let finished: Vec<bool> = par::ordered_map_with(jobs, self.shards.len(), |i| {
            let mut shard = self.shards[i].lock().expect("shard engine panicked");
            let shard = &mut *shard;
            if shard.report.is_some() {
                return true;
            }
            // Nested under `fleet.epoch` at jobs=1 (same thread); a root
            // span on pool workers — tree shape is timing-class data.
            let _step_span = telemetry::tree_span("fleet.shard_step");
            telemetry::annotate("shard", i as u64);
            let ((), elapsed_ns) = telemetry::time_ns(|| {
                shard.engine.advance_until(&shard.spec.trace, limit);
                if limit >= shard.spec.trace.duration_ns() {
                    shard.report = Some(shard.engine.finish_run());
                }
            });
            shard.step_latency_ns.push(elapsed_ns);
            telemetry::observe_timing(
                "fleet.step.latency_us",
                &STEP_LATENCY_EDGES_US,
                elapsed_ns / 1_000,
            );
            shard.report.is_some()
        });
        // Cross-shard work, deterministically in shard order: stamp the
        // completion epoch of every shard that finished this batch.
        for (i, done) in finished.iter().enumerate() {
            if *done {
                let mut shard = self.shards[i].lock().expect("shard engine panicked");
                if shard.done_epoch.is_none() {
                    shard.done_epoch = Some(self.epoch);
                }
            }
        }
        self.epoch_barrier();
        !self.is_done()
    }

    /// Post-epoch barrier bookkeeping, in deterministic shard order:
    /// folds every shard's [`LiveStats`] delta since the previous epoch
    /// into an [`EpochEntry`], emits it through the `fleet.obs.*` counters
    /// and the registry's time-series ring (tick = epoch), evaluates the
    /// armed health monitor (if any) against the fresh point, and — on a
    /// durable fleet — appends the entry to the epoch log and persists the
    /// meta snapshot.
    ///
    /// Runs single-threaded after the epoch barrier, so the sampled deltas
    /// are a function of simulation state only — the series is
    /// deterministic and byte-identical at any `jobs` value.
    fn epoch_barrier(&mut self) {
        if !telemetry::enabled() && self.meta.is_none() {
            return;
        }
        let mut entry = EpochEntry {
            epoch: self.epoch,
            ..EpochEntry::default()
        };
        for slot in &self.shards {
            // memlint: allow(no-unwrap): poisoned shard lock means an engine panicked — propagate
            let mut shard = slot.lock().expect("shard engine panicked");
            let live = shard.engine.live_stats();
            let prev = &shard.last_live;
            entry.faults_injected += live.faults_injected.saturating_sub(prev.faults_injected);
            entry.aborts += live.aborts.saturating_sub(prev.aborts);
            entry.retries += live.retries.saturating_sub(prev.retries);
            entry.backoffs_scheduled += live
                .backoffs_scheduled
                .saturating_sub(prev.backoffs_scheduled);
            entry.backoff_ceiling_hits += live
                .backoff_ceiling_hits
                .saturating_sub(prev.backoff_ceiling_hits);
            entry.escapes += live.escapes.saturating_sub(prev.escapes);
            entry.pinned_pages += live.pinned_pages;
            entry.pages += live.pages;
            entry.pril_buffered += live.pril_buffered;
            entry.pril_capacity += live.pril_capacity;
            entry.shards_done += u64::from(shard.report.is_some());
            shard.last_live = live;
        }
        if telemetry::enabled() {
            let point = durable::emit_epoch_entry(&entry);
            if let (Some(monitor), Some(point)) = (&self.health, point) {
                let fired = monitor
                    .lock()
                    // memlint: allow(no-unwrap): a poisoned monitor must fail the run, not go silent
                    .expect("health monitor poisoned")
                    .evaluate(&point);
                if fired > 0 {
                    telemetry::trace_event("fleet.alerts_fired", fired as u64);
                }
            }
        }
        if self.meta.is_some() {
            self.epoch_log.push(entry);
            self.persist_barrier();
        }
    }

    /// Persists the current epoch barrier to the fleet meta store: one
    /// [`Record::EpochSample`] in the WAL, then a fresh [`FleetMeta`]
    /// snapshot. The first failure poisons the meta store (mirroring the
    /// shard engines' store-error latch): the fleet keeps simulating, but
    /// no further meta writes are attempted.
    fn persist_barrier(&mut self) {
        if self.meta_error.is_some() {
            return;
        }
        let last_live: Vec<LiveStats> = self
            .shards
            .iter()
            .map(|slot| {
                slot.lock()
                    // memlint: allow(no-unwrap): poisoned shard lock means an engine panicked — propagate
                    .expect("shard engine panicked")
                    .last_live
            })
            .collect();
        let meta = FleetMeta {
            epoch: self.epoch,
            entries: self.epoch_log.clone(),
            last_live,
        };
        let Some(store) = self.meta.as_mut() else {
            return;
        };
        let result = store
            .append(&Record::EpochSample { epoch: self.epoch })
            .and_then(|()| store.publish_snapshot(&meta.encode()));
        if let Err(err) = result {
            self.meta_error = Some(err);
        }
    }

    /// Runs epochs until every shard completes, then rolls up and returns
    /// the fleet report (also flushing the fleet-level roll-ups through
    /// the telemetry registry).
    pub fn run_to_completion(&mut self, jobs: usize) -> FleetReport {
        while self.run_epoch(jobs) {}
        self.report()
    }

    /// Rolls the per-shard results up into a [`FleetReport`] and flushes
    /// the fleet-level aggregates through [`telemetry`]. Call after the
    /// fleet is done; shards still mid-run contribute no summary.
    ///
    /// # Panics
    ///
    /// Panics if a shard engine panicked (poisoned shard lock).
    #[must_use]
    pub fn report(&self) -> FleetReport {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut latencies: Vec<u64> = Vec::new();
        for slot in &self.shards {
            let shard = slot.lock().expect("shard engine panicked");
            latencies.extend_from_slice(&shard.step_latency_ns);
            let Some(report) = shard.report else { continue };
            let internals = shard.engine.internals();
            let recovery: &RecoveryStats = shard.engine.recovery_stats();
            let final_hi = shard
                .engine
                .final_states()
                .iter()
                .filter(|s| **s != PageState::LoRef)
                .count() as u64;
            shards.push(ShardSummary {
                node: shard.spec.node,
                profile: shard.spec.profile.clone(),
                n_pages: shard.spec.trace.n_pages(),
                done_epoch: shard.done_epoch.unwrap_or(self.epoch),
                refresh_reduction: report.refresh_reduction,
                lo_coverage: report.lo_coverage,
                refresh_ops: report.refresh_ops,
                baseline_ops: report.baseline_ops,
                tests_correct: report.tests_correct,
                tests_mispredicted: report.tests_mispredicted,
                failing_tests: internals.tests.failed,
                final_hi_pages: final_hi,
                faults_injected: recovery.faults_injected.iter().sum(),
                uncorrectable_escapes: recovery.uncorrectable_escapes,
            });
        }
        latencies.sort_unstable();
        let percentile = |q: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx.min(latencies.len() - 1)]
        };
        let report = FleetReport::new(
            self.shards.len() as u64,
            self.seed,
            self.epoch,
            self.epoch_quanta,
            shards,
            LatencySummary {
                samples: latencies.len() as u64,
                p50_ns: percentile(0.50),
                p99_ns: percentile(0.99),
                max_ns: latencies.last().copied().unwrap_or(0),
            },
        );
        report.flush_telemetry();
        report
    }

    /// Checks the refresh-correctness invariant on every finished shard.
    ///
    /// # Errors
    ///
    /// Returns the first violating shard and its engine's description.
    ///
    /// # Panics
    ///
    /// Panics if a shard engine panicked (poisoned shard lock).
    pub fn verify_refresh_correctness(&self) -> Result<(), String> {
        for (i, slot) in self.shards.iter().enumerate() {
            let shard = slot.lock().expect("shard engine panicked");
            if shard.report.is_some() {
                shard
                    .engine
                    .verify_refresh_correctness()
                    .map_err(|e| format!("shard {i}: {e}"))?;
            }
        }
        Ok(())
    }
}

/// Per-chip-seed-group content templates: one simulated module per
/// distinct `(chip seed, density)` identity, built once and **cloned**
/// into each member shard's oracle. `DramModule` clones share their
/// scrambler tables and `CouplingFailureModel` clones share the
/// vulnerable-cell cache, so a group's chip state is `Arc`-shared across
/// its shard engines — cold fills happen once per chip config, not once
/// per shard (asserted by the cheap-clone audit test).
#[derive(Debug, Default)]
struct ContentTemplates {
    modules: Vec<((u64, dram::geometry::ChipDensity), dram::module::DramModule)>,
    model: Option<failure_model::model::CouplingFailureModel>,
}

impl ContentTemplates {
    fn build(plan: &FleetPlan) -> ContentTemplates {
        use dram::geometry::DramGeometry;
        use dram::timing::TimingParams;
        use failure_model::model::CouplingFailureModel;
        use failure_model::params::FailureModelParams;

        let FleetOracle::Content { rows_per_bank } = plan.config.oracle else {
            return ContentTemplates::default();
        };
        let mut templates = ContentTemplates {
            modules: Vec::new(),
            // One model for the whole fleet: the vulnerable-cell cache is
            // keyed by chip identity internally, so sharing it across
            // groups is sound and maximizes reuse.
            model: Some(CouplingFailureModel::new(
                FailureModelParams::calibrated_at(plan.config.engine.lo_ms),
            )),
        };
        for spec in &plan.shards {
            let key = (spec.chip_seed, spec.density);
            if templates.modules.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let mut geometry = DramGeometry::tiny();
            geometry.rows_per_bank = rows_per_bank;
            geometry.density = spec.density;
            let module =
                dram::module::DramModule::new(geometry, TimingParams::ddr3_1600(), spec.chip_seed);
            templates.modules.push((key, module));
        }
        templates
    }

    fn oracle(&self, spec: &ShardSpec, lo_ms: f64) -> ContentOracle {
        use failure_model::content::ContentProfile;
        let key = (spec.chip_seed, spec.density);
        let module = self
            .modules
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, m)| m.clone())
            .expect("template exists for every shard's chip identity");
        let model = self.model.clone().expect("content mode builds the model");
        // Content seed = chip seed: shards of one group regenerate the
        // same content stream for the same (page, generation).
        ContentOracle::new(
            module,
            model,
            ContentProfile::random_data(),
            lo_ms,
            spec.chip_seed,
        )
    }
}

/// Convenience: expand + instantiate + run to completion at `jobs`.
#[must_use]
pub fn run_fleet(config: &crate::FleetConfig, jobs: usize) -> FleetReport {
    let plan = FleetPlan::expand(config, jobs);
    let mut fleet = Fleet::new(&plan);
    fleet.run_to_completion(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleetConfig;

    #[test]
    fn epoch_stepping_matches_whole_runs() {
        // The fleet's epoch-sliced engines must report exactly what one
        // whole-trace run of the same engine reports.
        let config = FleetConfig::small(6, 42);
        let plan = FleetPlan::expand(&config, 1);
        let mut fleet = Fleet::new(&plan);
        let fleet_report = fleet.run_to_completion(1);
        for (spec, summary) in plan.shards.iter().zip(&fleet_report.shards) {
            let mut engine = MemconEngine::with_oracle(
                config.engine,
                spec.trace.n_pages(),
                Box::new(RateOracle::new(
                    memcon::engine::DEFAULT_FAIL_RATE,
                    spec.chip_seed,
                )),
            );
            let solo = engine.run(&spec.trace);
            assert_eq!(summary.refresh_reduction, solo.refresh_reduction);
            assert_eq!(summary.lo_coverage, solo.lo_coverage);
            assert_eq!(summary.tests_correct, solo.tests_correct);
            assert_eq!(summary.tests_mispredicted, solo.tests_mispredicted);
        }
        assert!(fleet.is_done());
        assert!(!fleet.run_epoch(1), "done fleet refuses further epochs");
        fleet.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn content_shards_share_chip_state_within_a_group() {
        // Two shards per chip-seed group: the vulnerable-cell cache must
        // cold-fill once per chip config, not once per shard. Counted via
        // the failure model's own cache telemetry.
        let mut config = FleetConfig::small(4, 7);
        config.distinct_chip_seeds = 2;
        config.density_mix = vec![dram::geometry::ChipDensity::Gb8];
        config.oracle = FleetOracle::Content { rows_per_bank: 32 };
        let registry = std::sync::Arc::new(telemetry::Registry::new());
        registry.set_enabled(true);
        let guard = telemetry::install(std::sync::Arc::clone(&registry));
        let _ = run_fleet(&config, 1);
        drop(guard);
        let builds = registry
            .counter(
                "failure_model.cache.chip_builds",
                telemetry::Class::Deterministic,
            )
            .get();
        assert_eq!(
            builds, 2,
            "4 shards over 2 chip identities must build exactly 2 cache entries"
        );
    }

    #[test]
    fn step_latencies_are_recorded_per_epoch() {
        let config = FleetConfig::small(3, 5);
        let plan = FleetPlan::expand(&config, 1);
        let mut fleet = Fleet::new(&plan);
        let report = fleet.run_to_completion(1);
        assert!(
            report.step_latency.samples >= 3,
            "one sample per shard-epoch"
        );
        assert!(report.step_latency.max_ns >= report.step_latency.p50_ns);
    }

    /// Engine-plane-only fault plan: the store sites stay cold so shard
    /// WALs never tear and the crash scenario is exactly the one injected
    /// by the test itself.
    fn engine_plan(seed: u64) -> Arc<faultinject::FaultPlan> {
        use faultinject::{Site, SiteSpec};
        Arc::new(
            faultinject::FaultPlan::new(seed)
                .with_site(Site::TestPreempt, SiteSpec::rate(0.05))
                .with_site(Site::TornRead, SiteSpec::rate(0.05)),
        )
    }

    #[test]
    fn recovered_fleet_is_jobs_invariant_and_matches_uninterrupted() {
        // Reference: the same fleet with no store at all.
        let mut config = FleetConfig::small(4, 99);
        config.fault_plan = Some(engine_plan(0xF1EE7));
        let reference = {
            let plan = FleetPlan::expand(&config, 1);
            Fleet::new(&plan).run_to_completion(1).deterministic_emit()
        };
        let mut det_sections: Vec<String> = Vec::new();
        for jobs in [1usize, 2, 8] {
            let dir = store::scratch_dir(&format!("fleet-recover-j{jobs}"));
            let mut durable = config.clone();
            durable.store_dir = Some(dir.clone());
            let plan = FleetPlan::expand(&durable, jobs);
            {
                // Pre-crash phase under a throwaway registry: the process
                // that crashes takes its registry with it.
                let registry = std::sync::Arc::new(telemetry::Registry::new());
                registry.set_enabled(true);
                let _guard = telemetry::install(std::sync::Arc::clone(&registry));
                let mut fleet = Fleet::new(&plan);
                assert!(fleet.run_epoch(jobs));
                assert!(fleet.run_epoch(jobs));
                // Crash at the barrier: drop the fleet mid-run.
            }
            let registry = std::sync::Arc::new(telemetry::Registry::new());
            registry.set_enabled(true);
            let guard = telemetry::install(std::sync::Arc::clone(&registry));
            let (mut fleet, rec) = Fleet::recover(&plan, jobs).expect("fleet recovers");
            assert_eq!(fleet.epoch(), 2, "fleet resumes at the crashed barrier");
            assert_eq!(rec.shards_recovered, 4);
            assert_eq!(rec.epochs_replayed, 2);
            assert!(fleet.meta_store_error().is_none());
            let report = fleet.run_to_completion(jobs);
            assert_eq!(
                report.deterministic_emit(),
                reference,
                "resumed fleet must report exactly what an uninterrupted storeless run does"
            );
            drop(guard);
            det_sections.push(
                registry
                    .report()
                    .get("deterministic")
                    .cloned()
                    .unwrap_or_else(memutil::json::Json::obj)
                    .emit(),
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(
            det_sections[0], det_sections[1],
            "recovered deterministic telemetry diverges between jobs 1 and 2"
        );
        assert_eq!(
            det_sections[0], det_sections[2],
            "recovered deterministic telemetry diverges between jobs 1 and 8"
        );
    }

    #[test]
    fn fleet_recovers_from_a_crash_before_the_first_barrier() {
        let mut config = FleetConfig::small(2, 31);
        let reference = {
            let plan = FleetPlan::expand(&config, 1);
            Fleet::new(&plan).run_to_completion(1).deterministic_emit()
        };
        let dir = store::scratch_dir("fleet-recover-epoch0");
        config.store_dir = Some(dir.clone());
        let plan = FleetPlan::expand(&config, 1);
        {
            let _fleet = Fleet::new(&plan); // crash before any epoch runs
        }
        let (mut fleet, rec) = Fleet::recover(&plan, 1).expect("anchor snapshot recovers");
        assert_eq!(fleet.epoch(), 0);
        assert_eq!(rec.epochs_replayed, 0);
        assert_eq!(rec.shards_recovered, 2);
        let report = fleet.run_to_completion(1);
        assert_eq!(report.deterministic_emit(), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_refuses_a_storeless_config_and_a_finished_fleet() {
        let mut config = FleetConfig::small(2, 8);
        let plan = FleetPlan::expand(&config, 1);
        assert!(matches!(
            Fleet::recover(&plan, 1),
            Err(StoreError::Unsupported(_))
        ));
        let dir = store::scratch_dir("fleet-recover-finished");
        config.store_dir = Some(dir.clone());
        let plan = FleetPlan::expand(&config, 1);
        let _ = Fleet::new(&plan).run_to_completion(1);
        assert!(
            matches!(Fleet::recover(&plan, 1), Err(StoreError::Unsupported(_))),
            "a finished fleet must refuse to resume"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
