//! Fleet-level roll-ups of per-shard MEMCON reports.
//!
//! A [`FleetReport`] aggregates every shard's [`memcon::engine::MemconReport`]
//! into fleet totals (refresh-ops savings, prediction quality, failing-row
//! distribution) plus a step-latency summary. The totals and per-shard rows
//! are pure functions of simulation state, so [`FleetReport::deterministic_emit`]
//! is byte-identical at any `--jobs` value; only the latency summary is
//! wall-clock data, and it is confined to the report's `timing` section.

use memutil::json::Json;

/// Report schema identifier emitted by [`FleetReport::to_json`].
pub const SCHEMA: &str = "memcon-fleet/v1";

/// Bucket edges (failing pages) of the `fleet.rollup.final_hi_per_shard`
/// roll-up histogram.
pub const FINAL_HI_EDGES: [u64; 8] = [0, 1, 2, 4, 8, 16, 64, 256];

/// Bucket edges (percent) of the `fleet.rollup.reduction_pct` roll-up
/// histogram.
pub const REDUCTION_PCT_EDGES: [u64; 7] = [10, 25, 40, 55, 70, 85, 100];

/// One shard's contribution to the fleet report, in node order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Node index (= shard index).
    pub node: u64,
    /// Table-1 display name of the shard's workload.
    pub profile: String,
    /// Pages the shard's engine tracked.
    pub n_pages: u64,
    /// Epoch at which the shard's run finished.
    pub done_epoch: u64,
    /// Refresh-operation reduction vs the all-HI-REF baseline.
    pub refresh_reduction: f64,
    /// Fraction of page-time at LO-REF.
    pub lo_coverage: f64,
    /// Refresh operations the shard performed.
    pub refresh_ops: f64,
    /// Refresh operations the baseline would have performed.
    pub baseline_ops: f64,
    /// Tests whose LO-REF residency amortized the cost.
    pub tests_correct: u64,
    /// Tests whose page was rewritten too soon.
    pub tests_mispredicted: u64,
    /// Completed tests that found a failing row.
    pub failing_tests: u64,
    /// Pages left outside LO-REF at the horizon (failing + pinned rows).
    pub final_hi_pages: u64,
    /// Faults injected across all sites, when a plan was armed.
    pub faults_injected: u64,
    /// Uncorrectable ECC escapes — must be 0 (chaos invariant).
    pub uncorrectable_escapes: u64,
}

impl ShardSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("node", self.node)
            .field("profile", self.profile.as_str())
            .field("n_pages", self.n_pages)
            .field("done_epoch", self.done_epoch)
            .field("refresh_reduction", self.refresh_reduction)
            .field("lo_coverage", self.lo_coverage)
            .field("refresh_ops", self.refresh_ops)
            .field("baseline_ops", self.baseline_ops)
            .field("tests_correct", self.tests_correct)
            .field("tests_mispredicted", self.tests_mispredicted)
            .field("failing_tests", self.failing_tests)
            .field("final_hi_pages", self.final_hi_pages)
            .field("faults_injected", self.faults_injected)
            .field("uncorrectable_escapes", self.uncorrectable_escapes)
    }
}

/// Wall-clock summary of per-shard epoch-step latencies ([`telemetry`]
/// `Timing` class: excluded from determinism byte-diffs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of (shard, epoch) step samples.
    pub samples: u64,
    /// Median step latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile step latency, ns.
    pub p99_ns: u64,
    /// Slowest step, ns.
    pub max_ns: u64,
}

/// Fleet-level aggregates over every shard's run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Shards simulated.
    pub shards_total: u64,
    /// Master fleet seed.
    pub seed: u64,
    /// Scheduler epochs run.
    pub epochs: u64,
    /// PRIL quanta per epoch.
    pub epoch_quanta: u64,
    /// Per-shard rows, in node order.
    pub shards: Vec<ShardSummary>,
    /// Sum of per-shard refresh operations performed.
    pub refresh_ops: f64,
    /// Sum of per-shard baseline refresh operations.
    pub baseline_ops: f64,
    /// Fleet-wide refresh-ops reduction: `1 - refresh_ops / baseline_ops`.
    pub refresh_reduction: f64,
    /// Page-weighted mean LO-REF coverage.
    pub lo_coverage: f64,
    /// Total correctly amortized tests.
    pub tests_correct: u64,
    /// Total mispredicted tests.
    pub tests_mispredicted: u64,
    /// Total tests that found a failing row.
    pub failing_tests: u64,
    /// Total pages left outside LO-REF at the horizon.
    pub final_hi_pages: u64,
    /// Total injected faults.
    pub faults_injected: u64,
    /// Total uncorrectable ECC escapes (must be 0).
    pub uncorrectable_escapes: u64,
    /// Step-latency summary (wall-clock; `timing` section only).
    pub step_latency: LatencySummary,
}

impl FleetReport {
    /// Folds `shards` (already in node order) into fleet totals. The fold
    /// is sequential in shard order, so the f64 sums are bit-reproducible.
    #[must_use]
    pub fn new(
        shards_total: u64,
        seed: u64,
        epochs: u64,
        epoch_quanta: u64,
        shards: Vec<ShardSummary>,
        step_latency: LatencySummary,
    ) -> FleetReport {
        let mut refresh_ops = 0.0;
        let mut baseline_ops = 0.0;
        let mut weighted_lo = 0.0;
        let mut pages = 0u64;
        let mut tests_correct = 0;
        let mut tests_mispredicted = 0;
        let mut failing_tests = 0;
        let mut final_hi_pages = 0;
        let mut faults_injected = 0;
        let mut uncorrectable_escapes = 0;
        for s in &shards {
            refresh_ops += s.refresh_ops;
            baseline_ops += s.baseline_ops;
            weighted_lo += s.lo_coverage * s.n_pages as f64;
            pages += s.n_pages;
            tests_correct += s.tests_correct;
            tests_mispredicted += s.tests_mispredicted;
            failing_tests += s.failing_tests;
            final_hi_pages += s.final_hi_pages;
            faults_injected += s.faults_injected;
            uncorrectable_escapes += s.uncorrectable_escapes;
        }
        let refresh_reduction = if baseline_ops > 0.0 {
            1.0 - refresh_ops / baseline_ops
        } else {
            0.0
        };
        let lo_coverage = if pages > 0 {
            weighted_lo / pages as f64
        } else {
            0.0
        };
        FleetReport {
            shards_total,
            seed,
            epochs,
            epoch_quanta,
            shards,
            refresh_ops,
            baseline_ops,
            refresh_reduction,
            lo_coverage,
            tests_correct,
            tests_mispredicted,
            failing_tests,
            final_hi_pages,
            faults_injected,
            uncorrectable_escapes,
            step_latency,
        }
    }

    /// The deterministic half of the report (everything except the
    /// wall-clock latency summary) as JSON — the object byte-compared by
    /// the fleet determinism tests and the `xtask fleet --smoke` gate.
    #[must_use]
    pub fn deterministic_json(&self) -> Json {
        let mut shards = Json::arr();
        for s in &self.shards {
            shards = shards.push(s.to_json());
        }
        Json::obj()
            .field("shards_total", self.shards_total)
            .field("seed", self.seed)
            .field("epochs", self.epochs)
            .field("epoch_quanta", self.epoch_quanta)
            .field("refresh_ops", self.refresh_ops)
            .field("baseline_ops", self.baseline_ops)
            .field("refresh_reduction", self.refresh_reduction)
            .field("lo_coverage", self.lo_coverage)
            .field("tests_correct", self.tests_correct)
            .field("tests_mispredicted", self.tests_mispredicted)
            .field("failing_tests", self.failing_tests)
            .field("final_hi_pages", self.final_hi_pages)
            .field("faults_injected", self.faults_injected)
            .field("uncorrectable_escapes", self.uncorrectable_escapes)
            .field("shards", shards)
    }

    /// Byte-stable serialization of the deterministic section — equal
    /// strings across `--jobs` values is the fleet determinism contract.
    #[must_use]
    pub fn deterministic_emit(&self) -> String {
        self.deterministic_json().emit()
    }

    /// The full report: schema + deterministic section + `timing` section
    /// (step-latency percentiles, excluded from determinism diffs).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("deterministic", self.deterministic_json())
            .field(
                "timing",
                Json::obj().field(
                    "step_latency",
                    Json::obj()
                        .field("samples", self.step_latency.samples)
                        .field("p50_ns", self.step_latency.p50_ns)
                        .field("p99_ns", self.step_latency.p99_ns)
                        .field("max_ns", self.step_latency.max_ns),
                ),
            )
    }

    /// Flushes the fleet aggregates through the current [`telemetry`]
    /// registry: deterministic `fleet.rollup.*` counters and histograms
    /// (fractional ops totals rounded to whole operations). No-op when
    /// telemetry is disabled.
    pub fn flush_telemetry(&self) {
        if !telemetry::enabled() {
            return;
        }
        telemetry::count("fleet.rollup.shards", self.shards_total);
        telemetry::count("fleet.rollup.epochs", self.epochs);
        telemetry::count("fleet.rollup.tests_correct", self.tests_correct);
        telemetry::count("fleet.rollup.tests_mispredicted", self.tests_mispredicted);
        telemetry::count("fleet.rollup.failing_tests", self.failing_tests);
        telemetry::count("fleet.rollup.final_hi_pages", self.final_hi_pages);
        telemetry::count("fleet.rollup.refresh_ops", self.refresh_ops.round() as u64);
        telemetry::count(
            "fleet.rollup.baseline_ops",
            self.baseline_ops.round() as u64,
        );
        telemetry::count("fleet.rollup.faults_injected", self.faults_injected);
        for s in &self.shards {
            telemetry::observe(
                "fleet.rollup.final_hi_per_shard",
                &FINAL_HI_EDGES,
                s.final_hi_pages,
            );
            telemetry::observe(
                "fleet.rollup.reduction_pct",
                &REDUCTION_PCT_EDGES,
                (s.refresh_reduction * 100.0).clamp(0.0, 100.0) as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(node: u64, refresh_ops: f64, baseline_ops: f64) -> ShardSummary {
        ShardSummary {
            node,
            profile: "netflix".into(),
            n_pages: 100,
            done_epoch: 3,
            refresh_reduction: 1.0 - refresh_ops / baseline_ops,
            lo_coverage: 0.5,
            refresh_ops,
            baseline_ops,
            tests_correct: 10,
            tests_mispredicted: 2,
            failing_tests: 1,
            final_hi_pages: 4,
            faults_injected: 0,
            uncorrectable_escapes: 0,
        }
    }

    #[test]
    fn totals_fold_in_shard_order() {
        let report = FleetReport::new(
            2,
            7,
            3,
            2,
            vec![shard(0, 100.0, 400.0), shard(1, 50.0, 400.0)],
            LatencySummary::default(),
        );
        assert_eq!(report.refresh_ops, 150.0);
        assert_eq!(report.baseline_ops, 800.0);
        assert!((report.refresh_reduction - (1.0 - 150.0 / 800.0)).abs() < 1e-12);
        assert_eq!(report.tests_correct, 20);
        assert_eq!(report.final_hi_pages, 8);
        assert!((report.lo_coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_emit_excludes_wall_clock() {
        let shards = vec![shard(0, 10.0, 40.0)];
        let a = FleetReport::new(
            1,
            1,
            2,
            2,
            shards.clone(),
            LatencySummary {
                samples: 2,
                p50_ns: 10,
                p99_ns: 20,
                max_ns: 30,
            },
        );
        let b = FleetReport::new(1, 1, 2, 2, shards, LatencySummary::default());
        assert_eq!(a.deterministic_emit(), b.deterministic_emit());
        assert_ne!(a.to_json().emit(), b.to_json().emit());
        assert_eq!(
            a.to_json().get("schema").and_then(Json::as_str),
            Some(SCHEMA)
        );
    }

    #[test]
    fn flush_records_rollup_counters() {
        let registry = std::sync::Arc::new(telemetry::Registry::new());
        registry.set_enabled(true);
        let guard = telemetry::install(std::sync::Arc::clone(&registry));
        let report = FleetReport::new(
            2,
            7,
            3,
            2,
            vec![shard(0, 100.0, 400.0), shard(1, 50.0, 400.0)],
            LatencySummary::default(),
        );
        report.flush_telemetry();
        drop(guard);
        assert_eq!(
            registry
                .counter("fleet.rollup.shards", telemetry::Class::Deterministic)
                .get(),
            2
        );
        assert_eq!(
            registry
                .counter("fleet.rollup.refresh_ops", telemetry::Class::Deterministic)
                .get(),
            150
        );
        assert_eq!(
            registry
                .histogram(
                    "fleet.rollup.final_hi_per_shard",
                    telemetry::Class::Deterministic,
                    &FINAL_HI_EDGES
                )
                .count(),
            2
        );
    }
}
