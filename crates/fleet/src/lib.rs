//! Fleet-scale sharded MEMCON simulation.
//!
//! The paper evaluates MEMCON on a single module; its economic argument
//! (profiling cost amortized against refresh-energy savings) only pays off
//! for an operator running it across a whole rack. This crate scales the
//! single-module [`memcon::engine::MemconEngine`] to hundreds-to-thousands
//! of simulated DIMMs:
//!
//! * a [`FleetConfig`] (node count, density mix, distinct chip seeds,
//!   per-node Table-1 workload assignment) expands into a [`FleetPlan`] —
//!   one spec per *shard* (= one simulated DIMM) with its own synthesized
//!   write trace, chip identity, and derived fault plan;
//! * [`Fleet`] instantiates one `MemconEngine` per shard — fully
//!   independent PRIL/refresh/recovery state — and advances all shards one
//!   *epoch* (a batch of PRIL quanta) at a time over the
//!   [`memutil::par`] work-stealing pool, applying cross-shard roll-up
//!   work in deterministic shard order after each batch;
//! * a [`FleetReport`](report::FleetReport) rolls the per-shard reports up
//!   into fleet-level aggregates (failing-row distribution, refresh-ops
//!   savings) plus per-shard step-latency percentiles, and the same
//!   aggregates are flushed through the [`telemetry`] registry.
//!
//! # Determinism
//!
//! Everything a shard computes is a pure function of `(fleet seed, node
//! index)`: the workload profile, the trace, the chip seed, the oracle
//! stream, and the per-shard fault plan (derived via
//! [`faultinject::FaultPlan::for_shard`], so fault decisions never depend
//! on which worker thread steps the shard). Telemetry roll-ups are atomic
//! counter adds, which commute. The fleet report's deterministic section
//! and the registry's deterministic section are therefore byte-identical
//! at any `--jobs` value — with or without faults armed — which the
//! `xtask fleet --smoke` CI gate and the crate's property tests pin.

#![warn(missing_docs)]

pub mod durable;
pub mod engine;
pub mod report;

pub use durable::{EpochEntry, FleetMeta, FleetRecovery};
pub use engine::Fleet;
pub use report::{FleetReport, ShardSummary};

use std::path::PathBuf;
use std::sync::Arc;

use store::DurabilityMode;

use dram::geometry::ChipDensity;
use faultinject::FaultPlan;
use memcon::config::MemconConfig;
use memtrace::trace::WriteTrace;
use memtrace::workload::WorkloadProfile;
use memutil::par;

/// SplitMix64 finalizer (identical constants to `memutil`'s PRNG) — the
/// seed-derivation mix for per-node traces and chip identities.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Which failure oracle each shard engine runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetOracle {
    /// Bernoulli oracle at a fixed failing-row rate, seeded by the shard's
    /// chip seed — the cheap trace-scale default.
    Rate {
        /// Failing-row probability per test (paper Fig. 4 band).
        fail_rate: f64,
    },
    /// Physics-backed [`memcon::testengine::ContentOracle`] over a small
    /// simulated chip. Shards sharing a chip-seed group share the chip's
    /// immutable state: the module's scrambler tables and the failure
    /// model's vulnerable-cell cache are `Arc`-shared across their
    /// engines, not rebuilt per shard.
    Content {
        /// Rows per bank of the simulated chip (two banks, 256-byte rows).
        rows_per_bank: u32,
    },
}

/// Configuration of a simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of nodes (one DIMM shard per node).
    pub nodes: u64,
    /// Master seed; every per-shard stream derives from `(seed, node)`.
    pub seed: u64,
    /// Footprint scale applied to each node's Table-1 workload profile.
    pub scale: f64,
    /// Simulated trace window per node, seconds.
    pub window_s: f64,
    /// PRIL quanta advanced per scheduler epoch (batching factor: larger
    /// epochs mean fewer pool barriers but coarser progress roll-up).
    pub epoch_quanta: u64,
    /// Chip densities assigned round-robin across nodes.
    pub density_mix: Vec<ChipDensity>,
    /// Number of distinct chip seeds; node `i` joins seed group
    /// `i % distinct_chip_seeds`. Shards in one group model identical
    /// silicon and share its immutable chip state.
    pub distinct_chip_seeds: u64,
    /// Per-shard MEMCON engine configuration.
    pub engine: MemconConfig,
    /// Failure-oracle mode for every shard.
    pub oracle: FleetOracle,
    /// Base fault plan; each shard runs the [`FaultPlan::for_shard`]
    /// derivation so fault streams are per-shard keyed.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Durable store root, or `None` for a purely in-memory fleet. When
    /// set, every shard engine journals to `<dir>/shard-<node>` and the
    /// scheduler keeps its epoch log in `<dir>/fleet`, snapshotting both
    /// at every epoch barrier; a crashed fleet resumes via
    /// [`Fleet::recover`].
    pub store_dir: Option<PathBuf>,
    /// Durability mode of every store the fleet creates.
    pub durability: DurabilityMode,
}

impl FleetConfig {
    /// A small, fast fleet: scaled-down workloads over a short window —
    /// the shape used by the smoke gate, tests, and benches.
    #[must_use]
    pub fn small(nodes: u64, seed: u64) -> FleetConfig {
        FleetConfig {
            nodes,
            seed,
            scale: 0.02,
            window_s: 8.0,
            epoch_quanta: 2,
            density_mix: vec![ChipDensity::Gb8, ChipDensity::Gb16, ChipDensity::Gb32],
            distinct_chip_seeds: (nodes / 2).max(1),
            engine: MemconConfig::paper_default(),
            oracle: FleetOracle::Rate {
                fail_rate: memcon::engine::DEFAULT_FAIL_RATE,
            },
            fault_plan: None,
            store_dir: None,
            durability: DurabilityMode::Buffered,
        }
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("fleet needs at least one node".into());
        }
        if !(self.scale > 0.0) {
            return Err("scale must be positive".into());
        }
        if !(self.window_s > 0.0) {
            return Err("window must be positive".into());
        }
        if self.epoch_quanta == 0 {
            return Err("epoch must span at least one quantum".into());
        }
        if self.density_mix.is_empty() {
            return Err("density mix must name at least one density".into());
        }
        if self.distinct_chip_seeds == 0 {
            return Err("need at least one chip seed group".into());
        }
        match self.oracle {
            FleetOracle::Rate { fail_rate } => {
                if !(0.0..=1.0).contains(&fail_rate) {
                    return Err(format!("fail rate {fail_rate} is not a probability"));
                }
            }
            FleetOracle::Content { rows_per_bank } => {
                if rows_per_bank == 0 {
                    return Err("content shards need at least one row per bank".into());
                }
                if self.store_dir.is_some() {
                    return Err(
                        "content-oracle shards cannot persist: the simulated chip's state \
                         is too large to snapshot (use the rate oracle with a store)"
                            .into(),
                    );
                }
            }
        }
        self.engine.validate().map_err(|e| format!("engine: {e}"))
    }
}

/// One shard's expanded identity: everything [`Fleet::new`] needs to build
/// its engine, with the trace already synthesized and `Arc`-shared.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Node index (= shard index).
    pub node: u64,
    /// Table-1 display name of the node's workload.
    pub profile: String,
    /// The node's synthesized write trace.
    pub trace: Arc<WriteTrace>,
    /// Chip identity seed (shared within a chip-seed group).
    pub chip_seed: u64,
    /// Chip density of this node's DIMM.
    pub density: ChipDensity,
    /// Per-shard derived fault plan, if the fleet arms faults.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

/// A fully expanded fleet: per-shard specs with synthesized traces.
///
/// Expansion is the expensive part (trace synthesis); [`Fleet::new`] over
/// an existing plan is cheap, so benches and repeated runs expand once and
/// instantiate per iteration.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// The configuration this plan was expanded from.
    pub config: FleetConfig,
    /// One spec per shard, in node order.
    pub shards: Vec<ShardSpec>,
}

impl FleetPlan {
    /// Expands `config` into per-shard specs, synthesizing the per-node
    /// traces across `jobs` workers (`0` = resolve automatically). The
    /// plan is a pure function of `config` — `jobs` only schedules.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn expand(config: &FleetConfig, jobs: usize) -> FleetPlan {
        config.validate().expect("invalid fleet configuration");
        let seed = config.seed;
        let shards = par::ordered_map_with(jobs, config.nodes as usize, |i| {
            let node = i as u64;
            let profile = WorkloadProfile::for_node(seed, node)
                .scaled(config.scale)
                .with_window(config.window_s);
            let name = profile.name.clone();
            // Inner synthesis runs inline (nested scopes are sequential in
            // memutil::par); the fan-out above already saturates the pool.
            let trace = Arc::new(profile.generate(mix64(seed ^ mix64(node))));
            let group = node % config.distinct_chip_seeds;
            ShardSpec {
                node,
                profile: name,
                trace,
                chip_seed: mix64(seed ^ 0xC41F_5EED ^ mix64(group)),
                density: config.density_mix[(node % config.density_mix.len() as u64) as usize],
                fault_plan: config
                    .fault_plan
                    .as_ref()
                    .map(|p| Arc::new(p.for_shard(node))),
            }
        });
        FleetPlan {
            config: config.clone(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_expansion_is_jobs_invariant() {
        let config = FleetConfig::small(12, 0xF1EE7);
        let a = FleetPlan::expand(&config, 1);
        let b = FleetPlan::expand(&config, 4);
        assert_eq!(a.shards.len(), 12);
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.node, sb.node);
            assert_eq!(sa.profile, sb.profile);
            assert_eq!(sa.trace, sb.trace);
            assert_eq!(sa.chip_seed, sb.chip_seed);
            assert_eq!(sa.density, sb.density);
        }
    }

    #[test]
    fn chip_seed_groups_share_identity() {
        let mut config = FleetConfig::small(8, 3);
        config.distinct_chip_seeds = 2;
        let plan = FleetPlan::expand(&config, 1);
        let seeds: Vec<u64> = plan.shards.iter().map(|s| s.chip_seed).collect();
        // Nodes alternate between exactly two chip identities.
        assert_eq!(seeds[0], seeds[2]);
        assert_eq!(seeds[1], seeds[3]);
        assert_ne!(seeds[0], seeds[1]);
    }

    #[test]
    fn shard_fault_plans_are_derived_per_node() {
        let mut config = FleetConfig::small(4, 9);
        config.fault_plan = Some(Arc::new(FaultPlan::uniform(0xBAD, 0.1)));
        let plan = FleetPlan::expand(&config, 1);
        let seeds: std::collections::HashSet<u64> = plan
            .shards
            .iter()
            .map(|s| s.fault_plan.as_ref().expect("plan armed").seed)
            .collect();
        assert_eq!(seeds.len(), 4, "each shard draws its own fault stream");
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(FleetConfig::small(0, 1).validate().is_err());
        let mut c = FleetConfig::small(4, 1);
        c.density_mix.clear();
        assert!(c.validate().is_err());
        let mut c = FleetConfig::small(4, 1);
        c.oracle = FleetOracle::Rate { fail_rate: 1.5 };
        assert!(c.validate().is_err());
        assert!(FleetConfig::small(4, 1).validate().is_ok());
    }

    #[test]
    fn validate_rejects_content_oracle_with_a_store() {
        let mut c = FleetConfig::small(4, 1);
        c.oracle = FleetOracle::Content { rows_per_bank: 32 };
        assert!(c.validate().is_ok(), "content without a store is fine");
        c.store_dir = Some(std::path::PathBuf::from("/tmp/nope"));
        assert!(
            c.validate().is_err(),
            "the content oracle's chip state cannot be persisted"
        );
    }
}
