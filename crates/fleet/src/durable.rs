//! Durable fleet state: the epoch log and its meta-store codec.
//!
//! A durable fleet ([`FleetConfig::store_dir`](crate::FleetConfig) set)
//! keeps two kinds of state on disk:
//!
//! * **per-shard stores** (`shard-<node>/`) — each shard engine journals
//!   its MEMCON transitions and snapshots itself at every epoch barrier
//!   (snapshot cadence = `epoch_quanta`), entirely through
//!   [`memcon::engine::MemconEngine::attach_store`];
//! * **one fleet meta store** (`fleet/`) — at every epoch barrier the
//!   scheduler appends an [`store::Record::EpochSample`] and publishes a
//!   [`FleetMeta`] snapshot: the epoch clock, the complete per-epoch
//!   observability log, and every shard's [`LiveStats`] cursor.
//!
//! On [`Fleet::recover`](crate::Fleet::recover) the meta snapshot replays
//! the epoch log through [`emit_epoch_entry`] — the *same* code path the
//! live barriers use — so the `fleet.obs.*` counters and the registry's
//! time-series ring come back byte-identical to an uninterrupted run, and
//! the restored `LiveStats` cursors keep the first post-resume epoch's
//! deltas exact even when a shard's own snapshot lags (e.g. after its
//! store was poisoned by an injected torn write).

use std::path::{Path, PathBuf};

use memcon::engine::LiveStats;
use memutil::codec::{Dec, Enc};

/// Meta-snapshot payload format version (the first payload byte).
const META_VERSION: u8 = 1;

/// Subdirectory of the fleet store root holding the meta store.
pub const META_SUBDIR: &str = "fleet";

/// The fleet meta store directory under `base`.
#[must_use]
pub fn meta_dir(base: &Path) -> PathBuf {
    base.join(META_SUBDIR)
}

/// The per-shard store directory under `base` for `node`.
#[must_use]
pub fn shard_dir(base: &Path, node: u64) -> PathBuf {
    base.join(format!("shard-{node:04}"))
}

/// One epoch barrier's observability roll-up: the `fleet.obs.*` counter
/// deltas plus the fleet-wide gauges sampled at that barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochEntry {
    /// Epoch this entry was recorded at (1-based).
    pub epoch: u64,
    /// Faults injected across all shards this epoch.
    pub faults_injected: u64,
    /// Tests aborted across all shards this epoch.
    pub aborts: u64,
    /// Tests retried across all shards this epoch.
    pub retries: u64,
    /// Backoffs scheduled across all shards this epoch.
    pub backoffs_scheduled: u64,
    /// Backoffs clamped at the policy cap this epoch.
    pub backoff_ceiling_hits: u64,
    /// Uncorrectable ECC escapes this epoch (must stay 0).
    pub escapes: u64,
    /// Pages pinned to HI-REF at the barrier (gauge).
    pub pinned_pages: u64,
    /// Pages tracked fleet-wide (gauge).
    pub pages: u64,
    /// PRIL write-buffer occupancy at the barrier (gauge).
    pub pril_buffered: u64,
    /// PRIL write-buffer capacity fleet-wide (gauge).
    pub pril_capacity: u64,
    /// Shards that have finished their runs (gauge).
    pub shards_done: u64,
}

/// Emits one epoch entry through the current [`telemetry`] registry:
/// the six `fleet.obs.*` counter deltas, then the five `fleet.gauge.*`
/// gauges as a time-series sample at tick = epoch. Live barriers and
/// recovery replay share this function, which is what makes a recovered
/// fleet's deterministic telemetry byte-identical to an uninterrupted
/// run's.
pub fn emit_epoch_entry(entry: &EpochEntry) -> Option<telemetry::SamplePoint> {
    telemetry::count("fleet.obs.faults_injected", entry.faults_injected);
    telemetry::count("fleet.obs.aborts", entry.aborts);
    telemetry::count("fleet.obs.retries", entry.retries);
    telemetry::count("fleet.obs.backoffs_scheduled", entry.backoffs_scheduled);
    telemetry::count("fleet.obs.backoff_ceiling_hits", entry.backoff_ceiling_hits);
    telemetry::count("fleet.obs.escapes", entry.escapes);
    telemetry::sample_point(
        entry.epoch,
        &[
            ("fleet.gauge.pinned_pages", entry.pinned_pages),
            ("fleet.gauge.pages", entry.pages),
            ("fleet.gauge.pril_buffered", entry.pril_buffered),
            ("fleet.gauge.pril_capacity", entry.pril_capacity),
            ("fleet.gauge.shards_done", entry.shards_done),
        ],
    )
}

/// The fleet meta store's snapshot payload: everything the scheduler
/// needs (beyond the per-shard engine snapshots) to resume a crashed
/// fleet at an epoch barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMeta {
    /// Epochs completed when this snapshot was published.
    pub epoch: u64,
    /// Complete epoch log, oldest first.
    pub entries: Vec<EpochEntry>,
    /// Every shard's [`LiveStats`] cursor at the barrier, in node order —
    /// restoring these keeps the first post-resume epoch's observability
    /// deltas exact.
    pub last_live: Vec<LiveStats>,
}

impl FleetMeta {
    /// Encodes the meta snapshot payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(64 + 96 * self.entries.len() + 96 * self.last_live.len());
        e.u8(META_VERSION);
        e.u64(self.epoch);
        e.u64(self.entries.len() as u64);
        for entry in &self.entries {
            e.u64(entry.epoch);
            e.u64(entry.faults_injected);
            e.u64(entry.aborts);
            e.u64(entry.retries);
            e.u64(entry.backoffs_scheduled);
            e.u64(entry.backoff_ceiling_hits);
            e.u64(entry.escapes);
            e.u64(entry.pinned_pages);
            e.u64(entry.pages);
            e.u64(entry.pril_buffered);
            e.u64(entry.pril_capacity);
            e.u64(entry.shards_done);
        }
        e.u64(self.last_live.len() as u64);
        for live in &self.last_live {
            e.u64(live.faults_injected);
            e.u64(live.aborts);
            e.u64(live.retries);
            e.u64(live.backoffs_scheduled);
            e.u64(live.backoff_ceiling_hits);
            e.u64(live.degraded_rows);
            e.u64(live.escapes);
            e.u64(live.pinned_pages);
            e.u64(live.pril_buffered);
            e.u64(live.pril_capacity);
            e.u64(live.pages);
        }
        e.into_bytes()
    }

    /// Decodes a meta snapshot payload.
    ///
    /// # Errors
    ///
    /// Returns a description when the payload is malformed or carries an
    /// unsupported version.
    pub fn decode(payload: &[u8]) -> Result<FleetMeta, String> {
        let mut d = Dec::new(payload);
        let version = d.u8()?;
        if version != META_VERSION {
            return Err(format!(
                "fleet meta version {version} is not supported (expected {META_VERSION})"
            ));
        }
        let epoch = d.u64()?;
        let n_entries = d.u64()?;
        let mut entries = Vec::with_capacity(n_entries.min(4096) as usize);
        for _ in 0..n_entries {
            entries.push(EpochEntry {
                epoch: d.u64()?,
                faults_injected: d.u64()?,
                aborts: d.u64()?,
                retries: d.u64()?,
                backoffs_scheduled: d.u64()?,
                backoff_ceiling_hits: d.u64()?,
                escapes: d.u64()?,
                pinned_pages: d.u64()?,
                pages: d.u64()?,
                pril_buffered: d.u64()?,
                pril_capacity: d.u64()?,
                shards_done: d.u64()?,
            });
        }
        let n_live = d.u64()?;
        let mut last_live = Vec::with_capacity(n_live.min(4096) as usize);
        for _ in 0..n_live {
            last_live.push(LiveStats {
                faults_injected: d.u64()?,
                aborts: d.u64()?,
                retries: d.u64()?,
                backoffs_scheduled: d.u64()?,
                backoff_ceiling_hits: d.u64()?,
                degraded_rows: d.u64()?,
                escapes: d.u64()?,
                pinned_pages: d.u64()?,
                pril_buffered: d.u64()?,
                pril_capacity: d.u64()?,
                pages: d.u64()?,
            });
        }
        d.finish("fleet meta snapshot")?;
        Ok(FleetMeta {
            epoch,
            entries,
            last_live,
        })
    }
}

/// What [`Fleet::recover`](crate::Fleet::recover) found on disk, rolled
/// up across the meta store and every shard store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetRecovery {
    /// Epoch-log entries replayed through the telemetry registry.
    pub epochs_replayed: u64,
    /// Shard engines recovered from their stores.
    pub shards_recovered: u64,
    /// WAL records replayed across all stores (meta + shards).
    pub replayed_records: u64,
    /// Bytes truncated from torn WAL tails across all stores.
    pub truncated_bytes: u64,
    /// Corrupt snapshots skipped (and deleted) across all stores.
    pub snapshots_skipped: u64,
    /// Stale pre-bound WAL segments discarded across all stores.
    pub stale_segments: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> FleetMeta {
        FleetMeta {
            epoch: 3,
            entries: (1..=3)
                .map(|epoch| EpochEntry {
                    epoch,
                    faults_injected: epoch * 2,
                    aborts: 1,
                    retries: epoch,
                    backoffs_scheduled: epoch + 1,
                    backoff_ceiling_hits: 0,
                    escapes: 0,
                    pinned_pages: epoch % 2,
                    pages: 640,
                    pril_buffered: 17,
                    pril_capacity: 64,
                    shards_done: 0,
                })
                .collect(),
            last_live: vec![
                LiveStats {
                    faults_injected: 6,
                    aborts: 1,
                    retries: 3,
                    backoffs_scheduled: 4,
                    backoff_ceiling_hits: 0,
                    degraded_rows: 1,
                    escapes: 0,
                    pinned_pages: 1,
                    pril_buffered: 9,
                    pril_capacity: 32,
                    pages: 320,
                },
                LiveStats::default(),
            ],
        }
    }

    #[test]
    fn meta_round_trips_bit_exactly() {
        let meta = sample_meta();
        let decoded = FleetMeta::decode(&meta.encode()).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn meta_rejects_malformed_payloads() {
        let mut bytes = sample_meta().encode();
        bytes[0] = 99; // unsupported version
        assert!(FleetMeta::decode(&bytes).is_err());
        let bytes = sample_meta().encode();
        assert!(
            FleetMeta::decode(&bytes[..bytes.len() - 1]).is_err(),
            "short payload is rejected"
        );
        let mut bytes = sample_meta().encode();
        bytes.push(0); // trailing garbage
        assert!(FleetMeta::decode(&bytes).is_err());
    }

    #[test]
    fn store_layout_paths_are_stable() {
        let base = Path::new("/tmp/fleet-store");
        assert_eq!(meta_dir(base), base.join("fleet"));
        assert_eq!(shard_dir(base, 7), base.join("shard-0007"));
    }
}
