//! Calibration probe: MEMCON refresh reduction and LO-REF coverage per
//! Table-1 workload (targets: Fig. 14 reduction 64.7–74.5 %, Fig. 17
//! coverage ≈ 95 %).

use memcon::config::MemconConfig;
use memcon::engine::MemconEngine;
use memtrace::workload::WorkloadProfile;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    for quantum in [1024.0] {
        println!("-- quantum {quantum} ms, scale {scale}");
        let mut reds = Vec::new();
        for w in WorkloadProfile::all() {
            let trace = w.clone().scaled(scale).generate(17);
            let cfg = MemconConfig::paper_default().with_quantum_ms(quantum);
            let mut engine = MemconEngine::new(cfg, trace.n_pages());
            let r = engine.run(&trace);
            let ti = engine.internals();
            println!(
                "{:<12} red {:>5.1}%  cov {:>5.1}%  tests {:>5} ok {:>5} mis {:>4} norm_t {:>6.4}",
                w.name,
                r.refresh_reduction * 100.0,
                r.lo_coverage * 100.0,
                ti.tests.started,
                r.tests_correct,
                r.tests_mispredicted,
                r.normalized_refresh_and_test_time(),
            );
            reds.push(r.refresh_reduction);
        }
        let avg = reds.iter().sum::<f64>() / reds.len() as f64;
        let min = reds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = reds.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "avg {:.1}%  min {:.1}%  max {:.1}%",
            avg * 100.0,
            min * 100.0,
            max * 100.0
        );
    }
}
