//! # MEMCON — memory-content-based detection and mitigation of
//! data-dependent DRAM failures
//!
//! This crate is the paper's primary contribution (Khan et al., MICRO 2017):
//! a system-level mechanism that, **without any knowledge of DRAM
//! internals**, keeps DRAM reliable at a low refresh rate by testing only
//! the *current* memory content and re-testing a page only when its content
//! changes — and even then, only when the write is predicted to be followed
//! by an interval long enough to amortize the test.
//!
//! The pieces, in dependency order:
//!
//! * [`cost`] — the cost-benefit model of online testing (paper Fig. 6 and
//!   appendix): test-mode costs from DDR3 timing, and the
//!   **MinWriteInterval** (560 ms Read-and-Compare / 864 ms Copy-and-Compare
//!   at 64 ms LO-REF; 480/448 ms at 128/256 ms) reproduced exactly,
//! * [`pril`] — the Probabilistic Remaining Interval Length predictor
//!   (paper Fig. 13): two write-maps and two bounded write-buffers across
//!   consecutive time quanta,
//! * [`ecc`] — CRC-64 row signatures and a Hamming SEC-DED code used by the
//!   Copy-and-Compare mode to detect flips without buffering full rows,
//! * [`testengine`] — online-test orchestration: concurrent-test slots,
//!   Copy-and-Compare staging-region bookkeeping, request redirection, and
//!   the failure oracles the engine tests against,
//! * [`refreshmgr`] — per-page HI-REF/Testing/LO-REF state with exact
//!   time-in-state integration and refresh-operation accounting,
//! * [`engine`] — the end-to-end [`engine::MemconEngine`]: feed it a write
//!   trace, get back refresh reduction, LO-REF coverage, and test-overhead
//!   accounting (paper Figs. 14, 17, 18). Under an active
//!   [`faultinject::FaultPlan`] it also runs the recovery machinery —
//!   abort/retry with capped exponential backoff, fail-safe high-refresh
//!   degradation — and reports it as [`engine::RecoveryStats`],
//! * [`raidr`] — the RAIDR baseline (Liu et al., ISCA 2012): Bloom-filter
//!   multi-rate refresh from an exhaustive profiling pass (paper Fig. 16).
//!
//! # Example
//!
//! ```
//! use memcon::config::MemconConfig;
//! use memcon::engine::MemconEngine;
//! use memtrace::workload::WorkloadProfile;
//!
//! let trace = WorkloadProfile::netflix().scaled(0.02).generate(1);
//! let mut engine = MemconEngine::new(MemconConfig::paper_default(), trace.n_pages());
//! let report = engine.run(&trace);
//! // MEMCON eliminates most refreshes (upper bound 75% for 16/64 ms).
//! assert!(report.refresh_reduction > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod cost;
pub mod ecc;
pub mod engine;
pub mod overhead;
pub mod pril;
pub mod raidr;
pub mod refreshmgr;
pub mod testengine;

pub use config::MemconConfig;
pub use cost::{CostModel, TestMode};
pub use engine::{MemconEngine, MemconReport, RecoveryStats};
pub use pril::Pril;
