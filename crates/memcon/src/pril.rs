//! PRIL — Probabilistic Remaining Interval Length prediction (paper
//! Section 4.2, Fig. 13).
//!
//! PRIL exploits the decreasing hazard rate of Pareto-distributed write
//! intervals: a page that has stayed unwritten for a whole quantum is likely
//! to stay unwritten long enough to amortize a test. The hardware is two
//! bit-vector *write-maps* and two bounded *write-buffers* over consecutive
//! quanta:
//!
//! * on a write, a page seen for the **first time** this quantum enters the
//!   current buffer (step ¶ of Fig. 13); a page seen **again** is evicted —
//!   its interval is clearly shorter than a quantum (step ·); a write also
//!   evicts the page from the *previous* buffer (step ¸),
//! * at quantum end, pages still in the previous buffer were written exactly
//!   once in the old quantum and never since — their current interval
//!   already exceeds one quantum, so they become test candidates (step ¹),
//! * buffers and maps then swap (step º).
//!
//! When the current buffer overflows, the new page is simply not tracked
//! (it stays at HI-REF — a lost opportunity, never a correctness issue),
//! matching the paper's footnote 10.

use std::collections::HashSet;

/// Page identifier (8 KB granularity).
pub type PageId = u64;

/// Which pages a quantum tracker keeps as candidates (the paper's footnote 8
/// design choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingPolicy {
    /// Track only pages written **exactly once** per quantum (the paper's
    /// choice: repeat-written pages are unlikely to idle long, and dropping
    /// them keeps the buffer small).
    SingleWrite,
    /// Track every written page (ablation baseline: larger buffer pressure,
    /// marginally more candidates).
    AnyWrite,
}

/// Statistics PRIL accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrilStats {
    /// Writes observed.
    pub writes: u64,
    /// First-in-quantum writes inserted into the buffer.
    pub inserted: u64,
    /// Pages evicted because of a repeat write in the same quantum.
    pub evicted_repeat: u64,
    /// Pages evicted from the previous buffer by a write in the current
    /// quantum.
    pub evicted_previous: u64,
    /// Writes discarded because the buffer was full (page stays HI-REF).
    pub overflowed: u64,
    /// Test candidates produced at quantum boundaries.
    pub candidates: u64,
    /// Quantum boundaries processed.
    pub quanta: u64,
}

/// One write-map + write-buffer pair for a single quantum.
#[derive(Debug, Clone, Default)]
struct QuantumTracker {
    /// Bit per page: written at least once this quantum.
    map: Vec<u64>,
    /// Pages written exactly once this quantum (bounded).
    buffer: HashSet<PageId>,
}

impl QuantumTracker {
    fn new(n_pages: u64) -> Self {
        QuantumTracker {
            map: vec![0; (n_pages as usize).div_ceil(64)],
            buffer: HashSet::new(),
        }
    }

    fn map_get(&self, page: PageId) -> bool {
        (self.map[(page / 64) as usize] >> (page % 64)) & 1 == 1
    }

    fn map_set(&mut self, page: PageId) {
        self.map[(page / 64) as usize] |= 1 << (page % 64);
    }

    fn clear(&mut self) {
        self.map.iter_mut().for_each(|w| *w = 0);
        self.buffer.clear();
    }
}

/// The PRIL predictor.
#[derive(Debug)]
pub struct Pril {
    current: QuantumTracker,
    previous: QuantumTracker,
    capacity: usize,
    n_pages: u64,
    policy: TrackingPolicy,
    /// Accumulated statistics.
    pub stats: PrilStats,
}

impl Pril {
    /// Creates a predictor for `n_pages` pages with the given write-buffer
    /// capacity, tracking single-write pages (the paper's policy).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(n_pages: u64, capacity: usize) -> Self {
        Pril::with_policy(n_pages, capacity, TrackingPolicy::SingleWrite)
    }

    /// Creates a predictor with an explicit tracking policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_policy(n_pages: u64, capacity: usize, policy: TrackingPolicy) -> Self {
        assert!(capacity > 0, "write buffer needs capacity");
        Pril {
            current: QuantumTracker::new(n_pages),
            previous: QuantumTracker::new(n_pages),
            capacity,
            n_pages,
            policy,
            stats: PrilStats::default(),
        }
    }

    /// Number of pages tracked.
    #[must_use]
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Current write-buffer occupancy.
    #[must_use]
    pub fn buffer_len(&self) -> usize {
        self.current.buffer.len()
    }

    /// Whether `page` is currently a candidate-in-waiting (written exactly
    /// once in the previous quantum, unwritten since).
    #[must_use]
    pub fn is_pending_candidate(&self, page: PageId) -> bool {
        self.previous.buffer.contains(&page)
    }

    /// Processes a write access to `page` (Fig. 13, left side).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn on_write(&mut self, page: PageId) {
        assert!(page < self.n_pages, "page {page} out of range");
        self.stats.writes += 1;
        // Step ¸: a write in this quantum disqualifies the page from the
        // previous quantum's candidacy.
        if self.previous.buffer.remove(&page) {
            self.stats.evicted_previous += 1;
        }
        if self.current.map_get(page) {
            // Step ·: repeat write — interval shorter than a quantum.
            // Under the paper's single-write policy the page is dropped;
            // the any-write ablation keeps it (its *current interval* still
            // restarts via the map, but candidacy survives).
            if self.policy == TrackingPolicy::SingleWrite && self.current.buffer.remove(&page) {
                self.stats.evicted_repeat += 1;
            }
        } else {
            // Step ¶: first write this quantum.
            self.current.map_set(page);
            if self.current.buffer.len() < self.capacity {
                self.current.buffer.insert(page);
                self.stats.inserted += 1;
            } else {
                self.stats.overflowed += 1;
            }
        }
    }

    /// Validates the tracker's internal consistency. Called by strict-mode
    /// harnesses at quantum boundaries.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    ///
    /// * both write-buffers respect the configured capacity,
    /// * every buffered page is in range and has its write-map bit set
    ///   (buffer ⊆ map),
    /// * page conservation: every inserted page is accounted for — drained
    ///   as a candidate, evicted (repeat or previous-quantum write), or
    ///   still resident in one of the two buffers.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (name, tracker) in [("current", &self.current), ("previous", &self.previous)] {
            if tracker.buffer.len() > self.capacity {
                return Err(format!(
                    "{name} buffer holds {} pages, capacity {}",
                    tracker.buffer.len(),
                    self.capacity
                ));
            }
            // Order-insensitive sweep: every page must satisfy the same
            // predicate, and the result is pass/fail (see KNOWN_FAILURES.md
            // on the error message naming a hash-order-dependent witness).
            // memlint: allow(map-iter-order): order-insensitive invariant sweep
            for &page in &tracker.buffer {
                if page >= self.n_pages {
                    return Err(format!("{name} buffer holds out-of-range page {page}"));
                }
                if !tracker.map_get(page) {
                    return Err(format!(
                        "{name} buffer holds page {page} but its write-map bit is clear"
                    ));
                }
            }
        }
        let accounted = self.stats.candidates
            + self.stats.evicted_repeat
            + self.stats.evicted_previous
            + self.current.buffer.len() as u64
            + self.previous.buffer.len() as u64;
        if self.stats.inserted != accounted {
            return Err(format!(
                "page conservation broken: {} inserted but {accounted} accounted for \
                 (candidates {} + repeat evictions {} + previous evictions {} + resident {})",
                self.stats.inserted,
                self.stats.candidates,
                self.stats.evicted_repeat,
                self.stats.evicted_previous,
                self.current.buffer.len() + self.previous.buffer.len(),
            ));
        }
        Ok(())
    }

    /// Ends the quantum (Fig. 13, right side): returns the test candidates
    /// (pages written exactly once in the previous quantum and untouched in
    /// this one), clears the previous tracker, and swaps.
    pub fn end_quantum(&mut self) -> Vec<PageId> {
        self.stats.quanta += 1;
        // The buffer stays a HashSet (on_write is the front-door hot path);
        // the hash-order drain is made deterministic by the sort below.
        // memlint: allow(map-iter-order): drained candidates are sorted on the next line
        let mut candidates: Vec<PageId> = self.previous.buffer.drain().collect();
        candidates.sort_unstable();
        self.stats.candidates += candidates.len() as u64;
        self.previous.clear();
        std::mem::swap(&mut self.current, &mut self.previous);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pril() -> Pril {
        Pril::new(1024, 64)
    }

    #[test]
    fn single_write_then_idle_quantum_becomes_candidate() {
        let mut p = pril();
        p.on_write(5);
        assert_eq!(p.buffer_len(), 1);
        assert!(!p.is_pending_candidate(5), "still in the current quantum");
        assert!(p.end_quantum().is_empty(), "no previous-quantum pages yet");
        assert!(p.is_pending_candidate(5), "awaiting one idle quantum");
        // Page 5 is now in the previous buffer; an idle quantum passes.
        let candidates = p.end_quantum();
        assert_eq!(candidates, vec![5]);
        assert!(!p.is_pending_candidate(5));
    }

    #[test]
    fn repeat_write_in_same_quantum_disqualifies() {
        let mut p = pril();
        p.on_write(7);
        p.on_write(7);
        assert!(p.end_quantum().is_empty());
        assert!(p.end_quantum().is_empty(), "page 7 was written twice");
        assert_eq!(p.stats.evicted_repeat, 1);
    }

    #[test]
    fn write_in_next_quantum_disqualifies() {
        let mut p = pril();
        p.on_write(9);
        let _ = p.end_quantum();
        p.on_write(9); // written again before proving a long interval
        assert!(p.end_quantum().is_empty());
        assert_eq!(p.stats.evicted_previous, 1);
        // …but that second write was a first-of-its-quantum write, so page 9
        // is again a candidate-in-waiting.
        assert_eq!(p.end_quantum(), vec![9]);
    }

    #[test]
    fn third_write_same_quantum_after_requalification() {
        let mut p = pril();
        p.on_write(3);
        p.on_write(3);
        p.on_write(3);
        // Map says already-written; buffer empty; no candidate ever.
        assert!(p.end_quantum().is_empty());
        assert!(p.end_quantum().is_empty());
    }

    #[test]
    fn overflow_discards_new_pages() {
        let mut p = Pril::new(1024, 2);
        p.on_write(1);
        p.on_write(2);
        p.on_write(3); // buffer full — page 3 untracked
        assert_eq!(p.stats.overflowed, 1);
        let _ = p.end_quantum();
        let mut c = p.end_quantum();
        c.sort_unstable();
        assert_eq!(c, vec![1, 2], "page 3 was lost to overflow");
    }

    #[test]
    fn overflowed_page_can_requalify_later() {
        let mut p = Pril::new(1024, 1);
        p.on_write(1);
        p.on_write(2); // overflow
        let _ = p.end_quantum();
        p.on_write(2); // fresh quantum, space available
        let _ = p.end_quantum();
        assert_eq!(p.end_quantum(), vec![2]);
    }

    #[test]
    fn candidates_are_unique() {
        let mut p = pril();
        for page in [1u64, 2, 3, 2, 1, 4] {
            p.on_write(page);
        }
        let _ = p.end_quantum();
        let mut c = p.end_quantum();
        c.sort_unstable();
        // 1 and 2 were written twice; only 3 and 4 qualify.
        assert_eq!(c, vec![3, 4]);
    }

    #[test]
    fn invariants_hold_through_scenarios() {
        // Exercise every transition class: insert, repeat-evict,
        // previous-evict, overflow, candidacy — checking conservation after
        // each step.
        let mut p = Pril::new(64, 2);
        p.check_invariants().unwrap();
        for page in [1u64, 2, 3, 2, 1] {
            p.on_write(page);
            p.check_invariants().unwrap();
        }
        let _ = p.end_quantum();
        p.check_invariants().unwrap();
        p.on_write(3); // evicts page 3 from the previous buffer
        p.check_invariants().unwrap();
        let _ = p.end_quantum();
        let _ = p.end_quantum();
        p.check_invariants().unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let mut p = pril();
        p.on_write(1);
        p.on_write(1);
        p.on_write(2);
        let _ = p.end_quantum();
        let _ = p.end_quantum();
        assert_eq!(p.stats.writes, 3);
        assert_eq!(p.stats.inserted, 2);
        assert_eq!(p.stats.evicted_repeat, 1);
        assert_eq!(p.stats.quanta, 2);
        assert_eq!(p.stats.candidates, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_page() {
        pril().on_write(5000);
    }

    #[test]
    fn any_write_policy_keeps_repeat_written_pages() {
        let mut single = Pril::new(64, 16);
        let mut any = Pril::with_policy(64, 16, TrackingPolicy::AnyWrite);
        for p in [&mut single, &mut any] {
            p.on_write(3);
            p.on_write(3); // repeat in the same quantum
            let _ = p.end_quantum();
        }
        assert!(single.end_quantum().is_empty(), "single-write drops page 3");
        assert_eq!(any.end_quantum(), vec![3], "any-write keeps page 3");
    }

    #[test]
    fn any_write_still_disqualified_by_next_quantum_write() {
        let mut p = Pril::with_policy(64, 16, TrackingPolicy::AnyWrite);
        p.on_write(9);
        p.on_write(9);
        let _ = p.end_quantum();
        p.on_write(9); // write in the observation quantum
        assert!(p.end_quantum().is_empty());
    }

    /// Seeded property loop against ground truth: a page is a candidate at
    /// the end of quantum Q iff it was written exactly once in quantum Q−1
    /// and not at all in Q (with an unbounded buffer).
    #[test]
    fn prop_matches_ground_truth() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0x9214_0001);
        for _ in 0..128 {
            let n_quanta = 6;
            let n_writes = rng.gen_range(0usize..200);
            let mut p = Pril::new(32, 10_000);
            let mut per_quantum: Vec<Vec<u64>> = vec![Vec::new(); n_quanta];
            for _ in 0..n_writes {
                let page = rng.gen_range(0u64..32);
                let q = rng.gen_range(0usize..n_quanta);
                per_quantum[q].push(page);
            }
            for q in 0..n_quanta {
                let mut sorted = per_quantum[q].clone();
                sorted.sort_unstable();
                for &page in &sorted {
                    p.on_write(page);
                }
                let mut got = p.end_quantum();
                p.check_invariants().unwrap();
                got.sort_unstable();
                if q == 0 {
                    assert!(got.is_empty());
                    continue;
                }
                let prev = &per_quantum[q - 1];
                let cur = &per_quantum[q];
                let mut expect: Vec<u64> = (0..32)
                    .filter(|page| {
                        prev.iter().filter(|&&x| x == *page).count() == 1 && !cur.contains(page)
                    })
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "quantum {q}");
            }
        }
    }
}
