//! PRIL — Probabilistic Remaining Interval Length prediction (paper
//! Section 4.2, Fig. 13).
//!
//! PRIL exploits the decreasing hazard rate of Pareto-distributed write
//! intervals: a page that has stayed unwritten for a whole quantum is likely
//! to stay unwritten long enough to amortize a test. The hardware is two
//! bit-vector *write-maps* and two bounded *write-buffers* over consecutive
//! quanta:
//!
//! * on a write, a page seen for the **first time** this quantum enters the
//!   current buffer (step ¶ of Fig. 13); a page seen **again** is evicted —
//!   its interval is clearly shorter than a quantum (step ·); a write also
//!   evicts the page from the *previous* buffer (step ¸),
//! * at quantum end, pages still in the previous buffer were written exactly
//!   once in the old quantum and never since — their current interval
//!   already exceeds one quantum, so they become test candidates (step ¹),
//! * buffers and maps then swap (step º).
//!
//! When the current buffer overflows, the new page is simply not tracked
//! (it stays at HI-REF — a lost opportunity, never a correctness issue),
//! matching the paper's footnote 10.
//!
//! # Struct-of-arrays layout (raw-speed wave 2)
//!
//! Per-page metadata is three parallel bit-vectors plus one counter and one
//! log per quantum tracker:
//!
//! * `map` — written at least once this quantum (as in the paper's RTL),
//! * `buf` — buffered as a candidate-in-waiting; the write-*buffer* of the
//!   paper is this bitmap, not a hash set,
//! * `len` — popcount of `buf`, giving O(1) capacity/occupancy checks,
//! * `order` — bounded insertion-order log (one entry per page per quantum,
//!   appended on step ¶ only) used for capacity/overflow accounting and the
//!   sparse quantum-end drain.
//!
//! Step ¸ clears the previous-buffer bit *eagerly* on each write, so the
//! candidate set at quantum end is exactly the surviving `previous.buf`
//! bits — the `previous & !current` candidacy algebra is maintained as the
//! standing invariant `previous.buf & current.map == 0` rather than
//! recomputed, and `end_quantum` reduces to an ascending bit-scan (dense) or
//! a filtered order-log replay (sparse). Every per-write operation is a
//! couple of word indexings and mask ops with no hashing and no
//! data-dependent memory allocation.
//!
//! The pre-wave hash-set implementation is retained as [`reference`] (under
//! `cfg(test)` or the `slow-reference` feature) and pinned bit-identical by
//! seeded equivalence property tests.

use memutil::codec::{Dec, Enc};

/// Page identifier (8 KB granularity).
pub type PageId = u64;

/// Which pages a quantum tracker keeps as candidates (the paper's footnote 8
/// design choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingPolicy {
    /// Track only pages written **exactly once** per quantum (the paper's
    /// choice: repeat-written pages are unlikely to idle long, and dropping
    /// them keeps the buffer small).
    SingleWrite,
    /// Track every written page (ablation baseline: larger buffer pressure,
    /// marginally more candidates).
    AnyWrite,
}

/// Statistics PRIL accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrilStats {
    /// Writes observed.
    pub writes: u64,
    /// First-in-quantum writes inserted into the buffer.
    pub inserted: u64,
    /// Pages evicted because of a repeat write in the same quantum.
    pub evicted_repeat: u64,
    /// Pages evicted from the previous buffer by a write in the current
    /// quantum.
    pub evicted_previous: u64,
    /// Writes discarded because the buffer was full (page stays HI-REF).
    pub overflowed: u64,
    /// Test candidates produced at quantum boundaries.
    pub candidates: u64,
    /// Quantum boundaries processed.
    pub quanta: u64,
}

/// One write-map + write-buffer pair for a single quantum, stored as
/// struct-of-arrays bit-vectors.
#[derive(Debug, Clone, Default)]
struct QuantumTracker {
    /// Bit per page: written at least once this quantum.
    map: Vec<u64>,
    /// Bit per page: buffered as a candidate-in-waiting (bounded by `len`).
    buf: Vec<u64>,
    /// Popcount of `buf`, maintained incrementally.
    len: usize,
    /// Insertion-order log: pages appended on first-write insertion. Each
    /// page appears at most once per quantum (the map bit forbids
    /// re-insertion), so the log is bounded by the insertions the capacity
    /// check admitted; evicted pages stay in the log and are filtered by the
    /// `buf` bitmap on drain.
    order: Vec<PageId>,
}

impl QuantumTracker {
    fn new(n_words: usize) -> Self {
        QuantumTracker {
            map: vec![0; n_words],
            buf: vec![0; n_words],
            len: 0,
            order: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.map.iter_mut().for_each(|w| *w = 0);
        self.buf.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
        self.order.clear();
    }
}

/// The PRIL predictor.
#[derive(Debug)]
pub struct Pril {
    current: QuantumTracker,
    previous: QuantumTracker,
    capacity: usize,
    n_pages: u64,
    n_words: usize,
    policy: TrackingPolicy,
    /// Accumulated statistics.
    pub stats: PrilStats,
}

impl Pril {
    /// Creates a predictor for `n_pages` pages with the given write-buffer
    /// capacity, tracking single-write pages (the paper's policy).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(n_pages: u64, capacity: usize) -> Self {
        Pril::with_policy(n_pages, capacity, TrackingPolicy::SingleWrite)
    }

    /// Creates a predictor with an explicit tracking policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_policy(n_pages: u64, capacity: usize, policy: TrackingPolicy) -> Self {
        assert!(capacity > 0, "write buffer needs capacity");
        let n_words = (n_pages as usize).div_ceil(64);
        Pril {
            current: QuantumTracker::new(n_words),
            previous: QuantumTracker::new(n_words),
            capacity,
            n_pages,
            n_words,
            policy,
            stats: PrilStats::default(),
        }
    }

    /// Number of pages tracked.
    #[must_use]
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Current write-buffer occupancy.
    #[must_use]
    pub fn buffer_len(&self) -> usize {
        self.current.len
    }

    /// Whether `page` is currently a candidate-in-waiting (written exactly
    /// once in the previous quantum, unwritten since).
    #[must_use]
    pub fn is_pending_candidate(&self, page: PageId) -> bool {
        (self.previous.buf[(page >> 6) as usize] >> (page & 63)) & 1 == 1
    }

    /// One write, stats.writes excluded (hoisted by the batch entry point).
    #[inline]
    fn write_one(&mut self, page: PageId) {
        assert!(page < self.n_pages, "page {page} out of range");
        let w = (page >> 6) as usize;
        let bit = 1u64 << (page & 63);
        // Step ¸: a write in this quantum disqualifies the page from the
        // previous quantum's candidacy. Eager bit-clear keeps the candidate
        // algebra (previous.buf & current.map == 0) standing and the
        // eviction stat exact at any mid-quantum observation point.
        let prev_buf = self.previous.buf[w];
        if prev_buf & bit != 0 {
            self.previous.buf[w] = prev_buf & !bit;
            self.previous.len -= 1;
            self.stats.evicted_previous += 1;
        }
        let cur_map = self.current.map[w];
        if cur_map & bit != 0 {
            // Step ·: repeat write — interval shorter than a quantum.
            // Under the paper's single-write policy the page is dropped;
            // the any-write ablation keeps it (its *current interval* still
            // restarts via the map, but candidacy survives).
            if self.policy == TrackingPolicy::SingleWrite {
                let cur_buf = self.current.buf[w];
                if cur_buf & bit != 0 {
                    self.current.buf[w] = cur_buf & !bit;
                    self.current.len -= 1;
                    self.stats.evicted_repeat += 1;
                }
            }
        } else {
            // Step ¶: first write this quantum.
            self.current.map[w] = cur_map | bit;
            if self.current.len < self.capacity {
                self.current.buf[w] |= bit;
                self.current.len += 1;
                self.current.order.push(page);
                self.stats.inserted += 1;
            } else {
                self.stats.overflowed += 1;
            }
        }
    }

    /// Processes a write access to `page` (Fig. 13, left side).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn on_write(&mut self, page: PageId) {
        self.stats.writes += 1;
        self.write_one(page);
    }

    /// Processes a batch of write accesses, equivalent to calling
    /// [`Pril::on_write`] for each page in order. This is the streaming
    /// front-door entry point: the write counter is bumped once and the
    /// per-write path is a handful of word ops, so a drained ingestion
    /// buffer costs a few ns per page.
    ///
    /// # Panics
    ///
    /// Panics if any page is out of range.
    pub fn on_write_batch(&mut self, pages: &[PageId]) {
        self.stats.writes += pages.len() as u64;
        for &page in pages {
            self.write_one(page);
        }
    }

    fn encode_tracker(t: &QuantumTracker, e: &mut Enc) {
        e.u64_slice(&t.map);
        e.u64_slice(&t.buf);
        e.u64(t.len as u64);
        e.u64_slice(&t.order);
    }

    fn restore_tracker(t: &mut QuantumTracker, n_words: usize, d: &mut Dec) -> Result<(), String> {
        let map = d.u64_vec()?;
        let buf = d.u64_vec()?;
        if map.len() != n_words || buf.len() != n_words {
            return Err(format!(
                "pril: snapshot bitmap width {}/{} does not match configured {n_words}",
                map.len(),
                buf.len()
            ));
        }
        t.map = map;
        t.buf = buf;
        t.len = usize::try_from(d.u64()?).map_err(|_| "pril: occupancy overflow".to_string())?;
        t.order = d.u64_vec()?;
        Ok(())
    }

    /// Serializes the tracker's dynamic state (both quantum bitmaps, the
    /// insertion-order logs, and the statistics block) for a durability
    /// snapshot. Capacity, policy, and page count are configuration and
    /// travel with the engine's config section instead.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        Self::encode_tracker(&self.current, e);
        Self::encode_tracker(&self.previous, e);
        e.u64(self.stats.writes);
        e.u64(self.stats.inserted);
        e.u64(self.stats.evicted_repeat);
        e.u64(self.stats.evicted_previous);
        e.u64(self.stats.overflowed);
        e.u64(self.stats.candidates);
        e.u64(self.stats.quanta);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) into
    /// a tracker built with the same configuration.
    pub(crate) fn restore_state(&mut self, d: &mut Dec) -> Result<(), String> {
        let n_words = self.n_words;
        Self::restore_tracker(&mut self.current, n_words, d)?;
        Self::restore_tracker(&mut self.previous, n_words, d)?;
        self.stats.writes = d.u64()?;
        self.stats.inserted = d.u64()?;
        self.stats.evicted_repeat = d.u64()?;
        self.stats.evicted_previous = d.u64()?;
        self.stats.overflowed = d.u64()?;
        self.stats.candidates = d.u64()?;
        self.stats.quanta = d.u64()?;
        Ok(())
    }

    /// Validates the tracker's internal consistency. Called by strict-mode
    /// harnesses at quantum boundaries.
    ///
    /// All checks are word-wise bit algebra or O(1) counter comparisons —
    /// the page-conservation check in particular reads only the SoA
    /// occupancy counters, so strict-mode soaks no longer pay a per-page
    /// sweep per quantum. On a violation the reported witness page is
    /// deterministic (the lowest offending page id).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    ///
    /// * both write-buffers respect the configured capacity,
    /// * every buffered page is in range and has its write-map bit set
    ///   (buffer ⊆ map, word-wise `buf & !map == 0`),
    /// * the occupancy counter matches the buffer popcount,
    /// * candidacy algebra: `previous.buf & current.map == 0` (eager step ¸
    ///   never leaves a current-quantum-written page pending),
    /// * page conservation: every inserted page is accounted for — drained
    ///   as a candidate, evicted (repeat or previous-quantum write), or
    ///   still resident in one of the two buffers.
    pub fn check_invariants(&self) -> Result<(), String> {
        let tail_mask = match self.n_pages & 63 {
            0 => u64::MAX,
            bits => (1u64 << bits) - 1,
        };
        for (name, tracker) in [("current", &self.current), ("previous", &self.previous)] {
            if tracker.len > self.capacity {
                return Err(format!(
                    "{name} buffer holds {} pages, capacity {}",
                    tracker.len, self.capacity
                ));
            }
            let mut popcount = 0usize;
            for (w, (&buf, &map)) in tracker.buf.iter().zip(&tracker.map).enumerate() {
                popcount += buf.count_ones() as usize;
                let orphan = buf & !map;
                if orphan != 0 {
                    let page = (w as u64) << 6 | u64::from(orphan.trailing_zeros());
                    return Err(format!(
                        "{name} buffer holds page {page} but its write-map bit is clear"
                    ));
                }
            }
            if let Some((&last_buf, &last_map)) = tracker.buf.last().zip(tracker.map.last()) {
                let stray = (last_buf | last_map) & !tail_mask;
                if stray != 0 {
                    let page = ((self.n_words as u64 - 1) << 6) | u64::from(stray.trailing_zeros());
                    return Err(format!("{name} buffer holds out-of-range page {page}"));
                }
            }
            if popcount != tracker.len {
                return Err(format!(
                    "{name} buffer occupancy counter {} disagrees with popcount {popcount}",
                    tracker.len
                ));
            }
        }
        for (w, (&prev_buf, &cur_map)) in
            self.previous.buf.iter().zip(&self.current.map).enumerate()
        {
            let stale = prev_buf & cur_map;
            if stale != 0 {
                let page = (w as u64) << 6 | u64::from(stale.trailing_zeros());
                return Err(format!(
                    "page {page} is pending candidacy but was written this quantum"
                ));
            }
        }
        let accounted = self.stats.candidates
            + self.stats.evicted_repeat
            + self.stats.evicted_previous
            + self.current.len as u64
            + self.previous.len as u64;
        if self.stats.inserted != accounted {
            return Err(format!(
                "page conservation broken: {} inserted but {accounted} accounted for \
                 (candidates {} + repeat evictions {} + previous evictions {} + resident {})",
                self.stats.inserted,
                self.stats.candidates,
                self.stats.evicted_repeat,
                self.stats.evicted_previous,
                self.current.len + self.previous.len,
            ));
        }
        Ok(())
    }

    /// Ends the quantum (Fig. 13, right side): returns the test candidates
    /// (pages written exactly once in the previous quantum and untouched in
    /// this one) in ascending page order, clears the previous tracker, and
    /// swaps.
    pub fn end_quantum(&mut self) -> Vec<PageId> {
        self.stats.quanta += 1;
        let prev = &self.previous;
        let mut candidates: Vec<PageId> = Vec::with_capacity(prev.len);
        if prev.len > 0 {
            // Sparse quanta replay the bounded order log (filtering evicted
            // pages by their cleared bit); dense quanta scan the bitmap
            // directly. Both yield the surviving bits — the choice depends
            // only on tracker state, so the result is deterministic either
            // way.
            if prev.order.len() < self.n_words / 8 {
                for &page in &prev.order {
                    if (prev.buf[(page >> 6) as usize] >> (page & 63)) & 1 == 1 {
                        candidates.push(page);
                    }
                }
                candidates.sort_unstable();
            } else {
                for (w, &word) in prev.buf.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        candidates.push((w as u64) << 6 | u64::from(word.trailing_zeros()));
                        word &= word - 1;
                    }
                }
            }
        }
        self.stats.candidates += candidates.len() as u64;
        self.previous.clear();
        std::mem::swap(&mut self.current, &mut self.previous);
        candidates
    }
}

/// The pre-wave hash-set implementation, retained as the slow reference for
/// equivalence property tests (PR-3 style). Semantics are pinned: the SoA
/// path must match this structure write-for-write on every observable —
/// candidates, stats, occupancy, pending-candidacy — under both tracking
/// policies, including the overflow edge.
#[cfg(any(test, feature = "slow-reference"))]
pub mod reference {
    use super::{PageId, PrilStats, TrackingPolicy};
    use std::collections::HashSet;

    #[derive(Debug, Clone, Default)]
    struct QuantumTracker {
        map: Vec<u64>,
        buffer: HashSet<PageId>,
    }

    impl QuantumTracker {
        fn new(n_pages: u64) -> Self {
            QuantumTracker {
                map: vec![0; (n_pages as usize).div_ceil(64)],
                buffer: HashSet::new(),
            }
        }

        fn map_get(&self, page: PageId) -> bool {
            (self.map[(page / 64) as usize] >> (page % 64)) & 1 == 1
        }

        fn map_set(&mut self, page: PageId) {
            self.map[(page / 64) as usize] |= 1 << (page % 64);
        }

        fn clear(&mut self) {
            self.map.iter_mut().for_each(|w| *w = 0);
            self.buffer.clear();
        }
    }

    /// Hash-set PRIL (the pre-wave implementation).
    #[derive(Debug)]
    pub struct PrilRef {
        current: QuantumTracker,
        previous: QuantumTracker,
        capacity: usize,
        n_pages: u64,
        policy: TrackingPolicy,
        /// Accumulated statistics.
        pub stats: PrilStats,
    }

    impl PrilRef {
        /// Creates a reference predictor with an explicit tracking policy.
        ///
        /// # Panics
        ///
        /// Panics if `capacity` is zero.
        #[must_use]
        pub fn with_policy(n_pages: u64, capacity: usize, policy: TrackingPolicy) -> Self {
            assert!(capacity > 0, "write buffer needs capacity");
            PrilRef {
                current: QuantumTracker::new(n_pages),
                previous: QuantumTracker::new(n_pages),
                capacity,
                n_pages,
                policy,
                stats: PrilStats::default(),
            }
        }

        /// Current write-buffer occupancy.
        #[must_use]
        pub fn buffer_len(&self) -> usize {
            self.current.buffer.len()
        }

        /// Whether `page` is a candidate-in-waiting.
        #[must_use]
        pub fn is_pending_candidate(&self, page: PageId) -> bool {
            self.previous.buffer.contains(&page)
        }

        /// Processes a write access to `page`.
        ///
        /// # Panics
        ///
        /// Panics if `page` is out of range.
        pub fn on_write(&mut self, page: PageId) {
            assert!(page < self.n_pages, "page {page} out of range");
            self.stats.writes += 1;
            if self.previous.buffer.remove(&page) {
                self.stats.evicted_previous += 1;
            }
            if self.current.map_get(page) {
                if self.policy == TrackingPolicy::SingleWrite && self.current.buffer.remove(&page) {
                    self.stats.evicted_repeat += 1;
                }
            } else {
                self.current.map_set(page);
                if self.current.buffer.len() < self.capacity {
                    self.current.buffer.insert(page);
                    self.stats.inserted += 1;
                } else {
                    self.stats.overflowed += 1;
                }
            }
        }

        /// Ends the quantum and returns the sorted candidates.
        pub fn end_quantum(&mut self) -> Vec<PageId> {
            self.stats.quanta += 1;
            // memlint: allow(map-iter-order): drained candidates are sorted on the next line
            let mut candidates: Vec<PageId> = self.previous.buffer.drain().collect();
            candidates.sort_unstable();
            self.stats.candidates += candidates.len() as u64;
            self.previous.clear();
            std::mem::swap(&mut self.current, &mut self.previous);
            candidates
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pril() -> Pril {
        Pril::new(1024, 64)
    }

    #[test]
    fn single_write_then_idle_quantum_becomes_candidate() {
        let mut p = pril();
        p.on_write(5);
        assert_eq!(p.buffer_len(), 1);
        assert!(!p.is_pending_candidate(5), "still in the current quantum");
        assert!(p.end_quantum().is_empty(), "no previous-quantum pages yet");
        assert!(p.is_pending_candidate(5), "awaiting one idle quantum");
        // Page 5 is now in the previous buffer; an idle quantum passes.
        let candidates = p.end_quantum();
        assert_eq!(candidates, vec![5]);
        assert!(!p.is_pending_candidate(5));
    }

    #[test]
    fn repeat_write_in_same_quantum_disqualifies() {
        let mut p = pril();
        p.on_write(7);
        p.on_write(7);
        assert!(p.end_quantum().is_empty());
        assert!(p.end_quantum().is_empty(), "page 7 was written twice");
        assert_eq!(p.stats.evicted_repeat, 1);
    }

    #[test]
    fn write_in_next_quantum_disqualifies() {
        let mut p = pril();
        p.on_write(9);
        let _ = p.end_quantum();
        p.on_write(9); // written again before proving a long interval
        assert!(p.end_quantum().is_empty());
        assert_eq!(p.stats.evicted_previous, 1);
        // …but that second write was a first-of-its-quantum write, so page 9
        // is again a candidate-in-waiting.
        assert_eq!(p.end_quantum(), vec![9]);
    }

    #[test]
    fn third_write_same_quantum_after_requalification() {
        let mut p = pril();
        p.on_write(3);
        p.on_write(3);
        p.on_write(3);
        // Map says already-written; buffer empty; no candidate ever.
        assert!(p.end_quantum().is_empty());
        assert!(p.end_quantum().is_empty());
    }

    #[test]
    fn overflow_discards_new_pages() {
        let mut p = Pril::new(1024, 2);
        p.on_write(1);
        p.on_write(2);
        p.on_write(3); // buffer full — page 3 untracked
        assert_eq!(p.stats.overflowed, 1);
        let _ = p.end_quantum();
        let mut c = p.end_quantum();
        c.sort_unstable();
        assert_eq!(c, vec![1, 2], "page 3 was lost to overflow");
    }

    #[test]
    fn overflowed_page_can_requalify_later() {
        let mut p = Pril::new(1024, 1);
        p.on_write(1);
        p.on_write(2); // overflow
        let _ = p.end_quantum();
        p.on_write(2); // fresh quantum, space available
        let _ = p.end_quantum();
        assert_eq!(p.end_quantum(), vec![2]);
    }

    #[test]
    fn candidates_are_unique() {
        let mut p = pril();
        for page in [1u64, 2, 3, 2, 1, 4] {
            p.on_write(page);
        }
        let _ = p.end_quantum();
        let mut c = p.end_quantum();
        c.sort_unstable();
        // 1 and 2 were written twice; only 3 and 4 qualify.
        assert_eq!(c, vec![3, 4]);
    }

    #[test]
    fn invariants_hold_through_scenarios() {
        // Exercise every transition class: insert, repeat-evict,
        // previous-evict, overflow, candidacy — checking conservation after
        // each step.
        let mut p = Pril::new(64, 2);
        p.check_invariants().unwrap();
        for page in [1u64, 2, 3, 2, 1] {
            p.on_write(page);
            p.check_invariants().unwrap();
        }
        let _ = p.end_quantum();
        p.check_invariants().unwrap();
        p.on_write(3); // evicts page 3 from the previous buffer
        p.check_invariants().unwrap();
        let _ = p.end_quantum();
        let _ = p.end_quantum();
        p.check_invariants().unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let mut p = pril();
        p.on_write(1);
        p.on_write(1);
        p.on_write(2);
        let _ = p.end_quantum();
        let _ = p.end_quantum();
        assert_eq!(p.stats.writes, 3);
        assert_eq!(p.stats.inserted, 2);
        assert_eq!(p.stats.evicted_repeat, 1);
        assert_eq!(p.stats.quanta, 2);
        assert_eq!(p.stats.candidates, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_page() {
        pril().on_write(5000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_rejects_out_of_range_page() {
        pril().on_write_batch(&[1, 2, 5000]);
    }

    #[test]
    fn batch_matches_per_write_loop() {
        let mut a = pril();
        let mut b = pril();
        let pages = [1u64, 2, 3, 2, 1, 4, 1023, 4];
        a.on_write_batch(&pages);
        for &page in &pages {
            b.on_write(page);
        }
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.buffer_len(), b.buffer_len());
        assert_eq!(a.end_quantum(), b.end_quantum());
        assert_eq!(a.end_quantum(), b.end_quantum());
    }

    #[test]
    fn non_multiple_of_64_page_count_stays_in_bounds() {
        let mut p = Pril::new(100, 8);
        p.on_write(99);
        p.check_invariants().unwrap();
        let _ = p.end_quantum();
        assert_eq!(p.end_quantum(), vec![99]);
        p.check_invariants().unwrap();
    }

    #[test]
    fn any_write_policy_keeps_repeat_written_pages() {
        let mut single = Pril::new(64, 16);
        let mut any = Pril::with_policy(64, 16, TrackingPolicy::AnyWrite);
        for p in [&mut single, &mut any] {
            p.on_write(3);
            p.on_write(3); // repeat in the same quantum
            let _ = p.end_quantum();
        }
        assert!(single.end_quantum().is_empty(), "single-write drops page 3");
        assert_eq!(any.end_quantum(), vec![3], "any-write keeps page 3");
    }

    #[test]
    fn any_write_still_disqualified_by_next_quantum_write() {
        let mut p = Pril::with_policy(64, 16, TrackingPolicy::AnyWrite);
        p.on_write(9);
        p.on_write(9);
        let _ = p.end_quantum();
        p.on_write(9); // write in the observation quantum
        assert!(p.end_quantum().is_empty());
    }

    /// Seeded property loop against ground truth: a page is a candidate at
    /// the end of quantum Q iff it was written exactly once in quantum Q−1
    /// and not at all in Q (with an unbounded buffer).
    #[test]
    fn prop_matches_ground_truth() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0x9214_0001);
        for _ in 0..128 {
            let n_quanta = 6;
            let n_writes = rng.gen_range(0usize..200);
            let mut p = Pril::new(32, 10_000);
            let mut per_quantum: Vec<Vec<u64>> = vec![Vec::new(); n_quanta];
            for _ in 0..n_writes {
                let page = rng.gen_range(0u64..32);
                let q = rng.gen_range(0usize..n_quanta);
                per_quantum[q].push(page);
            }
            for q in 0..n_quanta {
                let mut sorted = per_quantum[q].clone();
                sorted.sort_unstable();
                for &page in &sorted {
                    p.on_write(page);
                }
                let mut got = p.end_quantum();
                p.check_invariants().unwrap();
                got.sort_unstable();
                if q == 0 {
                    assert!(got.is_empty());
                    continue;
                }
                let prev = &per_quantum[q - 1];
                let cur = &per_quantum[q];
                let mut expect: Vec<u64> = (0..32)
                    .filter(|page| {
                        prev.iter().filter(|&&x| x == *page).count() == 1 && !cur.contains(page)
                    })
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "quantum {q}");
            }
        }
    }

    /// Seeded equivalence property: the bitmap SoA path is pinned
    /// observable-for-observable to the retained hash-set reference across
    /// both tracking policies, random op interleavings, and capacities small
    /// enough to exercise the overflow edge — checking candidates (drain
    /// ordering included), stats, occupancy, and pending-candidacy after
    /// every step.
    #[test]
    fn prop_matches_slow_reference() {
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        for policy in [TrackingPolicy::SingleWrite, TrackingPolicy::AnyWrite] {
            for seed in [0xF00D_0001u64, 0xF00D_0002, 0xF00D_0003, 0xF00D_0004] {
                let mut rng = SmallRng::seed_from_u64(seed);
                let n_pages = 257; // non-multiple of 64: tail-word edge
                let capacity = rng.gen_range(1usize..12); // small: overflow edge
                let mut fast = Pril::with_policy(n_pages, capacity, policy);
                let mut slow = reference::PrilRef::with_policy(n_pages, capacity, policy);
                for _ in 0..600 {
                    match rng.gen_range(0u32..10) {
                        0 => {
                            let fast_c = fast.end_quantum();
                            let slow_c = slow.end_quantum();
                            assert_eq!(fast_c, slow_c, "candidate drain diverged");
                        }
                        1 => {
                            let batch: Vec<PageId> = (0..rng.gen_range(0usize..20))
                                .map(|_| rng.gen_range(0u64..n_pages))
                                .collect();
                            fast.on_write_batch(&batch);
                            for &page in &batch {
                                slow.on_write(page);
                            }
                        }
                        _ => {
                            let page = rng.gen_range(0u64..n_pages);
                            fast.on_write(page);
                            slow.on_write(page);
                        }
                    }
                    assert_eq!(fast.stats, slow.stats, "stats diverged");
                    assert_eq!(fast.buffer_len(), slow.buffer_len());
                    let probe = rng.gen_range(0u64..n_pages);
                    assert_eq!(
                        fast.is_pending_candidate(probe),
                        slow.is_pending_candidate(probe),
                        "pending-candidacy diverged on page {probe}"
                    );
                    fast.check_invariants().unwrap();
                }
            }
        }
    }
}
