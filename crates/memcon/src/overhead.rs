//! Hardware storage-overhead analysis (paper Section 6.4).
//!
//! PRIL's state is two write-maps (one bit per page) and two bounded
//! write-buffers (page addresses); Copy-and-Compare adds the reserved
//! staging region. The paper's arithmetic for an 8 GB DIMM with 8 KB pages:
//!
//! * write-map: 1 M pages ⇒ **128 KB** per map,
//! * a 12 KB direct-mapped cache suffices for the ~100 K pages touched per
//!   quantum (the full maps live in memory),
//! * write-buffer: ~4000 entries ⇒ **17 KB**,
//! * staging region: 512 rows/bank ⇒ **1.56 %** of a 2 GB module.

use dram::geometry::DramGeometry;

use crate::config::MemconConfig;
use crate::cost::TestMode;

/// Byte sizes of every MEMCON hardware structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageOverhead {
    /// Pages tracked (capacity / page size).
    pub pages: u64,
    /// One write-map, bytes (bit per page); PRIL keeps two.
    pub write_map_bytes: u64,
    /// One write-buffer, bytes (address per entry); PRIL keeps two.
    pub write_buffer_bytes: u64,
    /// Bits per buffered page address.
    pub address_bits: u32,
    /// Staging region rows (Copy-and-Compare only, else 0).
    pub staging_rows: u64,
    /// Staging region as a fraction of module capacity.
    pub staging_fraction: f64,
}

impl StorageOverhead {
    /// Total controller SRAM: both write-maps (cached or full) plus both
    /// write-buffers.
    #[must_use]
    pub fn controller_sram_bytes(&self) -> u64 {
        2 * (self.write_map_bytes + self.write_buffer_bytes)
    }
}

/// Rows per bank the paper reserves for Copy-and-Compare staging.
pub const STAGING_ROWS_PER_BANK: u64 = 512;

/// Computes the overhead of `config` on a module of `geometry` with
/// `capacity_bytes` of system memory tracked at `page_bytes` granularity.
#[must_use]
pub fn storage_overhead(
    config: &MemconConfig,
    geometry: &DramGeometry,
    capacity_bytes: u64,
    page_bytes: u64,
) -> StorageOverhead {
    let pages = capacity_bytes / page_bytes;
    let address_bits = 64 - u64::max(pages.saturating_sub(1), 1).leading_zeros();
    let write_buffer_bytes =
        (config.write_buffer_capacity as u64 * u64::from(address_bits)).div_ceil(8);
    let (staging_rows, staging_fraction) = if config.test_mode == TestMode::CopyAndCompare {
        let rows = STAGING_ROWS_PER_BANK * u64::from(geometry.banks) * u64::from(geometry.ranks);
        (
            rows,
            geometry.reserved_fraction(STAGING_ROWS_PER_BANK as u32),
        )
    } else {
        (0, 0.0)
    };
    StorageOverhead {
        pages,
        write_map_bytes: pages.div_ceil(8),
        write_buffer_bytes,
        address_bits,
        staging_rows,
        staging_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn paper_section_6_4_numbers() {
        // 8 GB memory, 8 KB pages: 1M pages -> 128 KB write-map.
        let config = MemconConfig::paper_default();
        let geometry = DramGeometry::module_2gb();
        let o = storage_overhead(&config, &geometry, 8 * GB, 8192);
        assert_eq!(o.pages, 1 << 20);
        assert_eq!(o.write_map_bytes, 128 * 1024);
        // 4096-entry buffer of 20-bit addresses ≈ 10 KB (the paper's 17 KB
        // assumes full row addresses; ours is page-index compressed).
        assert_eq!(o.address_bits, 20);
        assert_eq!(o.write_buffer_bytes, 4096 * 20 / 8);
        assert!(o.write_buffer_bytes < 17 * 1024);
        // Read-and-Compare: no staging region.
        assert_eq!(o.staging_rows, 0);
        // Total SRAM stays small (paper: maps are cached; worst case here
        // is both full maps on-die).
        assert!(o.controller_sram_bytes() <= 2 * (128 * 1024 + 17 * 1024));
    }

    #[test]
    fn copy_and_compare_staging_is_1_56_percent() {
        let config = MemconConfig::paper_default().with_test_mode(TestMode::CopyAndCompare);
        let geometry = DramGeometry::module_2gb();
        let o = storage_overhead(&config, &geometry, 2 * GB, 8192);
        assert_eq!(o.staging_rows, 4096, "512 rows x 8 banks");
        assert!(
            (o.staging_fraction - 0.015625).abs() < 1e-12,
            "paper appendix: 1.56%"
        );
    }

    #[test]
    fn overhead_scales_with_capacity() {
        let config = MemconConfig::paper_default();
        let geometry = DramGeometry::module_2gb();
        let small = storage_overhead(&config, &geometry, 2 * GB, 8192);
        let large = storage_overhead(&config, &geometry, 32 * GB, 8192);
        assert_eq!(large.write_map_bytes, 16 * small.write_map_bytes);
        assert!(large.address_bits > small.address_bits);
    }
}
