//! Cost-benefit model of online testing (paper Section 3.3, Fig. 6, and
//! appendix).
//!
//! Testing a row costs extra row reads; the payoff is refreshing it at the
//! LO-REF rate afterwards. Accumulated over time (accounting one refresh
//! per elapsed interval, with the test itself standing in for the row's
//! first LO-REF interval, during which the row deliberately sits
//! unrefreshed):
//!
//! ```text
//! cost_hi(t)     = R · ⌊t / HI⌋
//! cost_memcon(t) = C_test + R · max(⌊t / LO⌋ − 1, 0)
//! ```
//!
//! **MinWriteInterval** is the first HI-REF boundary where `cost_hi`
//! exceeds `cost_memcon`. With the paper's DDR3-1600 costs (`C_test` =
//! 1068/1602 ns, `R` = 39 ns) this reproduces the published values exactly:
//! 560 ms (Read-and-Compare) and 864 ms (Copy-and-Compare) at LO = 64 ms,
//! and 480/448 ms at LO = 128/256 ms.

use dram::timing::TimingParams;

/// Where the in-test row's content is buffered during a test
/// (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestMode {
    /// Buffer the whole row in the memory controller; read the row twice.
    /// Cost `2·(tRCD + 128·tCCD + tRP)` = 1068 ns.
    ReadAndCompare,
    /// Stage the row in a reserved memory region, keep only an ECC signature
    /// in the controller; read twice plus write once. Cost
    /// `3·(tRCD + 128·tCCD + tRP)` = 1602 ns.
    CopyAndCompare,
}

impl TestMode {
    /// Both modes, in paper order.
    pub const ALL: [TestMode; 2] = [TestMode::ReadAndCompare, TestMode::CopyAndCompare];

    /// Number of full-row passes through the memory controller.
    #[must_use]
    pub fn row_passes(self) -> u32 {
        match self {
            TestMode::ReadAndCompare => 2,
            TestMode::CopyAndCompare => 3,
        }
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TestMode::ReadAndCompare => "Read and Compare",
            TestMode::CopyAndCompare => "Copy and Compare",
        }
    }
}

impl std::fmt::Display for TestMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The per-row cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one per-row refresh operation, ns (`tRAS + tRP` = 39).
    pub refresh_op_ns: f64,
    /// HI-REF per-row interval, ms (paper: 16).
    pub hi_ms: f64,
    /// LO-REF per-row interval, ms (paper: 64).
    pub lo_ms: f64,
    /// Cache blocks per row (128 for 8 KB rows).
    pub blocks_per_row: u32,
    /// One-row stream latency, ns (`tRCD + blocks·tCCD + tRP` = 534).
    pub row_stream_ns: f64,
}

impl CostModel {
    /// Builds the model from DDR3 timing and the HI/LO refresh intervals.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hi_ms < lo_ms`.
    #[must_use]
    pub fn new(timing: &TimingParams, blocks_per_row: u32, hi_ms: f64, lo_ms: f64) -> Self {
        assert!(hi_ms > 0.0 && lo_ms > hi_ms, "need 0 < HI < LO");
        CostModel {
            refresh_op_ns: timing.refresh_op_ns(),
            hi_ms,
            lo_ms,
            blocks_per_row,
            row_stream_ns: timing.row_stream_ns(blocks_per_row),
        }
    }

    /// The paper's configuration: DDR3-1600, 8 KB rows, HI = 16 ms,
    /// LO = 64 ms.
    #[must_use]
    pub fn paper_default() -> Self {
        CostModel::new(&TimingParams::ddr3_1600(), 128, 16.0, 64.0)
    }

    /// Latency cost of one test in `mode`, ns (paper appendix: 1068 ns and
    /// 1602 ns).
    #[must_use]
    pub fn test_cost_ns(&self, mode: TestMode) -> f64 {
        f64::from(mode.row_passes()) * self.row_stream_ns
    }

    /// Accumulated cost of keeping one row at HI-REF for `t_ms`.
    #[must_use]
    pub fn accumulated_hi_ns(&self, t_ms: f64) -> f64 {
        (t_ms / self.hi_ms).floor() * self.refresh_op_ns
    }

    /// Accumulated cost of testing at time 0 and then refreshing at LO-REF
    /// for `t_ms`. The test keeps the row idle through its first LO-REF
    /// interval, standing in for that refresh.
    #[must_use]
    pub fn accumulated_memcon_ns(&self, mode: TestMode, t_ms: f64) -> f64 {
        let lo_refreshes = ((t_ms / self.lo_ms).floor() - 1.0).max(0.0);
        self.test_cost_ns(mode) + lo_refreshes * self.refresh_op_ns
    }

    /// The accumulated-cost series of paper Fig. 6: `(t_ms, hi_ns,
    /// read_compare_ns, copy_compare_ns)` at every HI-REF boundary up to
    /// `horizon_ms`.
    #[must_use]
    pub fn fig6_series(&self, horizon_ms: f64) -> Vec<(f64, f64, f64, f64)> {
        let steps = (horizon_ms / self.hi_ms).floor() as u64;
        (1..=steps)
            .map(|i| {
                let t = i as f64 * self.hi_ms;
                (
                    t,
                    self.accumulated_hi_ns(t),
                    self.accumulated_memcon_ns(TestMode::ReadAndCompare, t),
                    self.accumulated_memcon_ns(TestMode::CopyAndCompare, t),
                )
            })
            .collect()
    }

    /// **MinWriteInterval**: the first HI-REF boundary at which staying at
    /// HI-REF becomes strictly more expensive than testing-then-LO-REF.
    ///
    /// # Panics
    ///
    /// Panics if no crossover occurs within 100 s (impossible for sane
    /// parameters — HI-REF accumulates cost ≥ 4× faster).
    #[must_use]
    pub fn min_write_interval_ms(&self, mode: TestMode) -> f64 {
        let mut i = 1u64;
        loop {
            let t = i as f64 * self.hi_ms;
            assert!(
                t < 100_000.0,
                "no cost crossover within 100 s — check HI/LO intervals"
            );
            if self.accumulated_hi_ns(t) > self.accumulated_memcon_ns(mode, t) {
                return t;
            }
            i += 1;
        }
    }

    /// Upper-bound refresh-operation reduction if every row ran at LO-REF
    /// all the time (paper: 75 % for 16/64 ms).
    #[must_use]
    pub fn upper_bound_reduction(&self) -> f64 {
        1.0 - self.hi_ms / self.lo_ms
    }

    /// Cost of a Copy-and-Compare test when the copy is performed inside
    /// DRAM with a RowClone-style row-to-row transfer (paper footnote 6):
    /// the write pass collapses to roughly one row cycle (`tRAS + tRP`)
    /// instead of streaming 128 blocks through the controller.
    #[must_use]
    pub fn copy_and_compare_rowclone_ns(&self) -> f64 {
        2.0 * self.row_stream_ns + self.refresh_op_ns
    }

    /// MinWriteInterval for RowClone-accelerated Copy-and-Compare —
    /// evaluating the optimization the paper leaves to future work.
    #[must_use]
    pub fn min_write_interval_rowclone_ms(&self) -> f64 {
        let cost = self.copy_and_compare_rowclone_ns();
        let mut i = 1u64;
        loop {
            let t = i as f64 * self.hi_ms;
            assert!(t < 100_000.0, "no cost crossover within 100 s");
            let memcon = cost + ((t / self.lo_ms).floor() - 1.0).max(0.0) * self.refresh_op_ns;
            if self.accumulated_hi_ns(t) > memcon {
                return t;
            }
            i += 1;
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_appendix_costs() {
        let m = CostModel::paper_default();
        assert_eq!(m.test_cost_ns(TestMode::ReadAndCompare), 1068.0);
        assert_eq!(m.test_cost_ns(TestMode::CopyAndCompare), 1602.0);
        assert_eq!(m.refresh_op_ns, 39.0);
        assert_eq!(m.row_stream_ns, 534.0);
    }

    #[test]
    fn paper_min_write_intervals_exact() {
        let m = CostModel::paper_default();
        assert_eq!(m.min_write_interval_ms(TestMode::ReadAndCompare), 560.0);
        assert_eq!(m.min_write_interval_ms(TestMode::CopyAndCompare), 864.0);
    }

    #[test]
    fn paper_min_write_intervals_other_lo_refs() {
        // Paper: 480 ms at LO = 128 ms and 448 ms at LO = 256 ms.
        let t = TimingParams::ddr3_1600();
        let m128 = CostModel::new(&t, 128, 16.0, 128.0);
        assert_eq!(m128.min_write_interval_ms(TestMode::ReadAndCompare), 480.0);
        let m256 = CostModel::new(&t, 128, 16.0, 256.0);
        assert_eq!(m256.min_write_interval_ms(TestMode::ReadAndCompare), 448.0);
    }

    #[test]
    fn paper_band_is_448_to_864() {
        // Headline claim: MinWriteInterval ranges 448-864 ms across modes
        // and LO-REF intervals.
        let t = TimingParams::ddr3_1600();
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for lo in [64.0, 128.0, 256.0] {
            for mode in TestMode::ALL {
                let v = CostModel::new(&t, 128, 16.0, lo).min_write_interval_ms(mode);
                min = min.min(v);
                max = max.max(v);
            }
        }
        assert_eq!(min, 448.0);
        assert_eq!(max, 864.0);
    }

    #[test]
    fn fig6_series_shape() {
        let m = CostModel::paper_default();
        let series = m.fig6_series(1000.0);
        assert_eq!(series.len(), 62); // 1000/16 floored
                                      // HI-REF line starts below the test cost but grows faster.
        let first = series.first().unwrap();
        assert!(first.1 < first.2 && first.2 < first.3);
        let last = series.last().unwrap();
        assert!(last.1 > last.2, "HI should exceed Read&Compare by 1 s");
        // Monotone accumulation.
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1 && w[1].2 >= w[0].2 && w[1].3 >= w[0].3);
        }
    }

    #[test]
    fn crossover_matches_min_write_interval() {
        let m = CostModel::paper_default();
        for mode in TestMode::ALL {
            let mwi = m.min_write_interval_ms(mode);
            assert!(m.accumulated_hi_ns(mwi) > m.accumulated_memcon_ns(mode, mwi));
            let before = mwi - m.hi_ms;
            assert!(m.accumulated_hi_ns(before) <= m.accumulated_memcon_ns(mode, before));
        }
    }

    #[test]
    fn upper_bound_is_75_percent() {
        assert_eq!(CostModel::paper_default().upper_bound_reduction(), 0.75);
    }

    #[test]
    fn mode_metadata() {
        assert_eq!(TestMode::ReadAndCompare.row_passes(), 2);
        assert_eq!(TestMode::CopyAndCompare.row_passes(), 3);
        assert_eq!(TestMode::CopyAndCompare.to_string(), "Copy and Compare");
    }

    #[test]
    #[should_panic(expected = "need 0 < HI < LO")]
    fn rejects_inverted_intervals() {
        let _ = CostModel::new(&TimingParams::ddr3_1600(), 128, 64.0, 16.0);
    }

    #[test]
    fn rowclone_shrinks_copy_and_compare() {
        // Footnote 6: in-DRAM copy makes Copy-and-Compare nearly as cheap
        // as Read-and-Compare.
        let m = CostModel::paper_default();
        let rc = m.copy_and_compare_rowclone_ns();
        assert_eq!(rc, 1068.0 + 39.0);
        assert!(rc < m.test_cost_ns(TestMode::CopyAndCompare));
        let mwi = m.min_write_interval_rowclone_ms();
        assert!(mwi < m.min_write_interval_ms(TestMode::CopyAndCompare));
        assert!(mwi >= m.min_write_interval_ms(TestMode::ReadAndCompare));
        assert_eq!(mwi, 592.0); // 1107 ns amortizes two HI steps later
    }
}
