//! RAIDR baseline (Liu et al., ISCA 2012), as compared against in paper
//! Fig. 16.
//!
//! RAIDR profiles the chip **once** for every cell that could fail at the
//! LO-REF interval with *any* content (which, as the paper argues, requires
//! knowledge of DRAM internals and worst-case patterns), records the failing
//! rows in a Bloom filter, and thereafter refreshes filter hits at HI-REF
//! and everything else at LO-REF. Because the profile must cover every
//! possible content, far more rows stay at HI-REF than MEMCON's
//! content-aware testing requires — the paper models 16 % of rows at HI-REF
//! versus MEMCON's per-content 0.38–5.6 %.

use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use crate::pril::PageId;

/// A classic k-hash Bloom filter over row ids, as RAIDR uses to store its
/// weak-row set in ~1 KB of SRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter of `m_bits` bits with `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `m_bits` or `k` is zero.
    #[must_use]
    pub fn new(m_bits: u64, k: u32) -> Self {
        assert!(m_bits > 0 && k > 0, "need positive size and hash count");
        BloomFilter {
            bits: vec![0; (m_bits as usize).div_ceil(64)],
            m: m_bits,
            k,
            inserted: 0,
        }
    }

    /// Sizes a filter for `n` expected insertions at ~1 % false positives
    /// (`m ≈ 9.6 n`, `k = 7`).
    #[must_use]
    pub fn for_capacity(n: u64) -> Self {
        BloomFilter::new((n.max(1)) * 10, 7)
    }

    fn hash(&self, item: u64, i: u32) -> u64 {
        // Double hashing: h1 + i·h2 over splitmix-style mixes.
        let mut a = item.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        a = (a ^ (a >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut b = item.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        b = (b ^ (b >> 29)).wrapping_mul(0x94D0_49BB_1331_11EB);
        a.wrapping_add(u64::from(i).wrapping_mul(b | 1)) % self.m
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: u64) {
        for i in 0..self.k {
            let h = self.hash(item, i);
            self.bits[(h / 64) as usize] |= 1 << (h % 64);
        }
        self.inserted += 1;
    }

    /// Membership query (no false negatives; small false-positive rate).
    #[must_use]
    pub fn contains(&self, item: u64) -> bool {
        (0..self.k).all(|i| {
            let h = self.hash(item, i);
            (self.bits[(h / 64) as usize] >> (h % 64)) & 1 == 1
        })
    }

    /// Items inserted so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.inserted
    }

    /// Whether the filter has no insertions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }
}

/// Refresh-operation accounting for a RAIDR system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaidrReport {
    /// Fraction of rows refreshed at HI-REF (profile hits plus Bloom false
    /// positives).
    pub hi_fraction: f64,
    /// Refresh-operation reduction vs the all-HI-REF baseline.
    pub refresh_reduction: f64,
    /// The all-LO upper bound for the interval pair.
    pub upper_bound: f64,
}

/// The RAIDR mechanism: one-time profile into a Bloom filter, then static
/// multi-rate refresh.
#[derive(Debug, Clone)]
pub struct Raidr {
    filter: BloomFilter,
    n_rows: u64,
    hi_ms: f64,
    lo_ms: f64,
}

impl Raidr {
    /// Builds RAIDR from an explicit profile of weak rows.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hi_ms < lo_ms` and `n_rows > 0`.
    #[must_use]
    pub fn from_profile(
        weak_rows: impl IntoIterator<Item = PageId>,
        n_rows: u64,
        hi_ms: f64,
        lo_ms: f64,
    ) -> Self {
        assert!(n_rows > 0, "need rows");
        assert!(hi_ms > 0.0 && lo_ms > hi_ms, "need 0 < HI < LO");
        let weak: Vec<PageId> = weak_rows.into_iter().collect();
        let mut filter = BloomFilter::for_capacity(weak.len() as u64);
        for row in weak {
            filter.insert(row);
        }
        Raidr {
            filter,
            n_rows,
            hi_ms,
            lo_ms,
        }
    }

    /// Builds RAIDR from the paper's Fig. 16 modelling assumption: failures
    /// randomly distributed such that `hi_fraction` of rows profile as
    /// failing (16 % in the paper, matching the Fig. 4 chip data).
    #[must_use]
    pub fn from_random_profile(
        n_rows: u64,
        hi_fraction: f64,
        hi_ms: f64,
        lo_ms: f64,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let weak: Vec<PageId> = (0..n_rows)
            .filter(|_| rng.gen::<f64>() < hi_fraction)
            .collect();
        Raidr::from_profile(weak, n_rows, hi_ms, lo_ms)
    }

    /// Refresh interval RAIDR uses for `row`.
    #[must_use]
    pub fn interval_ms(&self, row: PageId) -> f64 {
        if self.filter.contains(row) {
            self.hi_ms
        } else {
            self.lo_ms
        }
    }

    /// Accounting over all rows (RAIDR's rates are static, so no trace is
    /// needed).
    #[must_use]
    pub fn report(&self) -> RaidrReport {
        let hi_rows = (0..self.n_rows)
            .filter(|&r| self.filter.contains(r))
            .count() as f64;
        let hi_fraction = hi_rows / self.n_rows as f64;
        // Ops per ms per row: 1/hi for hits, 1/lo for the rest.
        let ops = hi_fraction / self.hi_ms + (1.0 - hi_fraction) / self.lo_ms;
        let baseline = 1.0 / self.hi_ms;
        RaidrReport {
            hi_fraction,
            refresh_reduction: 1.0 - ops / baseline,
            upper_bound: 1.0 - self.hi_ms / self.lo_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut f = BloomFilter::for_capacity(1000);
        for i in (0..1000u64).map(|i| i * 7 + 1) {
            f.insert(i);
        }
        for i in (0..1000u64).map(|i| i * 7 + 1) {
            assert!(f.contains(i), "false negative for {i}");
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_low() {
        let mut f = BloomFilter::for_capacity(10_000);
        for i in 0..10_000u64 {
            f.insert(i);
        }
        let fp = (10_000..110_000u64).filter(|&i| f.contains(i)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false-positive rate {rate}");
    }

    #[test]
    fn bloom_empty() {
        let f = BloomFilter::new(1024, 4);
        assert!(f.is_empty());
        assert!(!f.contains(42));
    }

    #[test]
    fn paper_fig16_configuration() {
        // 16% of rows at HI-REF, 16/64 ms: reduction = 1 - (0.16 + 0.84/4)
        // = 63%, below MEMCON's 64.7-74.5% but well above zero.
        let raidr = Raidr::from_random_profile(100_000, 0.16, 16.0, 64.0, 1);
        let r = raidr.report();
        assert!(
            (r.hi_fraction - 0.16).abs() < 0.01,
            "hi fraction {}",
            r.hi_fraction
        );
        let expected = 1.0 - (r.hi_fraction + (1.0 - r.hi_fraction) * 0.25);
        assert!((r.refresh_reduction - expected).abs() < 1e-9);
        assert!((0.60..0.65).contains(&r.refresh_reduction));
        assert_eq!(r.upper_bound, 0.75);
    }

    #[test]
    fn intervals_respect_profile() {
        let raidr = Raidr::from_profile([5u64, 9], 100, 16.0, 64.0);
        assert_eq!(raidr.interval_ms(5), 16.0);
        assert_eq!(raidr.interval_ms(9), 16.0);
        // Most other rows are LO (modulo rare Bloom false positives).
        let lo_count = (0..100u64)
            .filter(|&r| raidr.interval_ms(r) == 64.0)
            .count();
        assert!(lo_count >= 95);
    }

    #[test]
    fn empty_profile_hits_upper_bound() {
        let raidr = Raidr::from_profile(std::iter::empty(), 1000, 16.0, 64.0);
        let r = raidr.report();
        assert_eq!(r.hi_fraction, 0.0);
        assert!((r.refresh_reduction - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need rows")]
    fn zero_rows_rejected() {
        let _ = Raidr::from_profile(std::iter::empty(), 0, 16.0, 64.0);
    }
}
