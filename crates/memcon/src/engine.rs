//! The end-to-end MEMCON engine.
//!
//! Feed a page-granularity write trace through [`MemconEngine::run`] and it
//! executes the full mechanism of paper Sections 3–4 on a faithful timeline:
//!
//! 1. every write sends its page to HI-REF (and aborts any in-flight test of
//!    that page — the content under test just changed),
//! 2. PRIL watches writes across quanta; at each quantum boundary its
//!    candidates (pages idle for more than a quantum) start content tests,
//!    bounded by the concurrent-test budget,
//! 3. a test keeps the row unrefreshed for one LO-REF window, then the
//!    failure oracle delivers the verdict: clean rows drop to LO-REF,
//!    failing rows stay at HI-REF,
//! 4. time-in-state is integrated exactly, yielding the refresh-operation
//!    reduction (Fig. 14), LO-REF coverage (Fig. 17), and the
//!    testing-vs-refresh time split (Fig. 18), including the misprediction
//!    accounting (a test is mispredicted when its page is rewritten before
//!    `MinWriteInterval` elapses, so the test cost is never amortized).

use std::sync::Arc;

use faultinject::{FaultPlan, FaultSession, Site};
use memtrace::trace::WriteTrace;

use crate::config::MemconConfig;
use crate::cost::CostModel;
use crate::pril::{PageId, Pril, PrilStats};
use crate::refreshmgr::{PageState, RefreshManager};
use crate::testengine::{
    EccEvent, FailureOracle, RateOracle, TestEngine, TestEngineStats, Verdict,
};

/// Default Bernoulli failing-row rate for trace-scale runs (the middle of
/// the paper's Fig. 4 band of 0.38–5.6 %).
pub const DEFAULT_FAIL_RATE: f64 = 0.015;

/// Histogram edges (in quanta) of the retry-backoff distribution.
pub const BACKOFF_EDGES: [u64; 5] = [1, 2, 4, 8, 16];

/// Run-level recovery accounting: what the fault injector did to the run
/// and how the abort/retry/degradation machinery responded. All values
/// derive from simulation state, so the whole struct is bit-reproducible
/// for a fixed trace and [`FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Faults injected per site, indexed like [`Site::ALL`]; all zero when
    /// no plan is active.
    pub faults_injected: [u64; faultinject::N_SITES],
    /// Tests aborted by (real or injected) preempting writes.
    pub aborts: u64,
    /// Tests restarted from the backoff queue.
    pub retries: u64,
    /// Backoffs scheduled (one per aborted/ambiguous attempt).
    pub backoffs_scheduled: u64,
    /// Backoffs clamped at [`RecoveryPolicy::backoff_cap_quanta`] — the
    /// page keeps failing attempts after the exponential schedule maxed
    /// out, a saturation signal the health monitor watches.
    ///
    /// [`RecoveryPolicy::backoff_cap_quanta`]: crate::config::RecoveryPolicy
    pub backoff_ceiling_hits: u64,
    /// Backoff-length distribution, bucketed by [`BACKOFF_EDGES`]
    /// (≤1, ≤2, ≤4, ≤8, ≤16, >16 quanta).
    pub backoff_hist: [u64; 6],
    /// Pages pinned to the high-refresh bin by the fail-safe degradation
    /// rule (pin events; a page unpinned by a clean test and pinned again
    /// counts twice).
    pub degraded_rows: u64,
    /// Completed tests with an ambiguous verdict.
    pub ambiguous: u64,
    /// Single-bit ECC corrections during read-backs.
    pub ecc_corrected: u64,
    /// Uncorrectable ECC errors during read-backs.
    pub ecc_uncorrectable: u64,
    /// Uncorrectable ECC errors that did **not** leave their page pinned —
    /// must stay 0 (asserted by the chaos gate).
    pub uncorrectable_escapes: u64,
}

fn backoff_bucket(quanta: u64) -> usize {
    BACKOFF_EDGES
        .iter()
        .position(|&e| quanta <= e)
        .unwrap_or(BACKOFF_EDGES.len())
}

/// Everything the paper's Figs. 14, 17, and 18 need from one engine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemconReport {
    /// Refresh-operation reduction vs the all-HI-REF baseline (Fig. 14).
    pub refresh_reduction: f64,
    /// The reduction if every page ran at LO-REF always (75 % for 16/64 ms).
    pub upper_bound: f64,
    /// Fraction of page-time at LO-REF (Fig. 17).
    pub lo_coverage: f64,
    /// Fraction of page-time under test.
    pub testing_fraction: f64,
    /// Refresh operations MEMCON performed.
    pub refresh_ops: f64,
    /// Refresh operations the baseline would have performed.
    pub baseline_ops: f64,
    /// Completed tests whose LO-REF residency amortized the cost
    /// (no write within MinWriteInterval).
    pub tests_correct: u64,
    /// Tests whose page was rewritten too soon (including aborts).
    pub tests_mispredicted: u64,
    /// Latency spent on refresh operations, ns.
    pub refresh_time_ns: f64,
    /// Latency the baseline would spend on refresh, ns.
    pub baseline_refresh_time_ns: f64,
    /// Latency spent on correctly predicted tests, ns.
    pub test_time_correct_ns: f64,
    /// Latency spent on mispredicted/aborted tests, ns.
    pub test_time_mispredicted_ns: f64,
    /// Trace duration, ns.
    pub duration_ns: u64,
    /// Pages tracked.
    pub n_pages: u64,
}

impl MemconReport {
    /// Fig. 18's y-value: MEMCON's refresh+testing time normalized to the
    /// baseline's refresh time.
    #[must_use]
    pub fn normalized_refresh_and_test_time(&self) -> f64 {
        if self.baseline_refresh_time_ns <= 0.0 {
            return 0.0;
        }
        (self.refresh_time_ns + self.test_time_correct_ns + self.test_time_mispredicted_ns)
            / self.baseline_refresh_time_ns
    }
}

/// Combined statistics (report + component internals) for diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct EngineInternals {
    /// PRIL statistics.
    pub pril: PrilStats,
    /// Test-engine statistics.
    pub tests: TestEngineStats,
    /// Recovery statistics of the last run.
    pub recovery: RecoveryStats,
}

/// Instantaneous observability snapshot of an engine, readable between
/// [`MemconEngine::advance_until`] slices (the fleet scheduler reads one
/// per shard per epoch, post-barrier) or after a finished run. Totals are
/// cumulative for the current run; `pinned_pages` and `pril_buffered` are
/// gauges. All values derive from simulation state — deterministic for a
/// fixed trace and plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Faults injected so far, summed across sites.
    pub faults_injected: u64,
    /// Tests aborted so far.
    pub aborts: u64,
    /// Tests restarted from the backoff queue so far.
    pub retries: u64,
    /// Backoffs scheduled so far.
    pub backoffs_scheduled: u64,
    /// Backoffs clamped at the policy cap so far.
    pub backoff_ceiling_hits: u64,
    /// Fail-safe HI-REF pin events so far.
    pub degraded_rows: u64,
    /// Uncorrectable ECC escapes so far (must stay 0).
    pub escapes: u64,
    /// Pages currently pinned to HI-REF (gauge).
    pub pinned_pages: u64,
    /// PRIL write-buffer occupancy (gauge).
    pub pril_buffered: u64,
    /// PRIL write-buffer capacity.
    pub pril_capacity: u64,
    /// Pages the engine tracks.
    pub pages: u64,
}

/// Persistent state of a stepped run between [`MemconEngine::begin_run`]
/// and [`MemconEngine::finish_run`]. Holding the refresh manager and the
/// event cursor here (instead of on `run`'s stack) is what lets a fleet
/// scheduler advance an engine one time-slice at a time.
#[derive(Debug)]
struct RunState {
    mgr: RefreshManager,
    /// Cursor into `trace.events()`: events before it are consumed.
    event_idx: usize,
    /// Next quantum boundary, ns.
    next_quantum: u64,
    quantum_ns: u64,
    mwi_ns: u64,
    duration: u64,
    /// Oracle memo counters at run start (telemetry reports the delta).
    memo_before: crate::testengine::MemoStats,
}

/// The MEMCON engine.
#[derive(Debug)]
pub struct MemconEngine {
    config: MemconConfig,
    cost: CostModel,
    pril: Pril,
    tests: TestEngine,
    n_pages: u64,
    /// Final per-page states of the last completed run.
    last_states: Vec<PageState>,
    /// Per-page content-generation counter (bumped by every write).
    generation: Vec<u64>,
    /// Pending amortization anchor: Some(test start) while the page sits at
    /// LO-REF un-rewritten.
    lo_anchor: Vec<Option<u64>>,
    tests_correct: u64,
    tests_mispredicted: u64,
    /// Reused completion buffer for [`TestEngine::poll_into`] — the event
    /// loop polls at every write and quantum boundary, so a fresh `Vec` per
    /// poll would dominate allocations.
    outcome_buf: Vec<crate::testengine::TestOutcome>,
    /// Explicit fault plan (takes precedence over the globally installed
    /// one); a fresh [`FaultSession`] is created per run.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Consecutive aborted/ambiguous attempts per page, reset by a clean
    /// verdict.
    attempts: Vec<u32>,
    /// Backoff expiry (quantum index) per page, while a retry is armed.
    retry_at: Vec<Option<u64>>,
    /// Pages with an armed retry, in arming order.
    retry_queue: Vec<PageId>,
    /// Generation of the last clean passing test per page — the evidence
    /// backing the refresh-correctness invariant.
    clean_gen: Vec<Option<u64>>,
    /// Quantum boundaries crossed this run.
    quantum_index: u64,
    recovery: RecoveryStats,
    /// Final per-page pin flags of the last run.
    last_pinned: Vec<bool>,
    /// In-progress stepped run, if any.
    run: Option<RunState>,
    /// Quantum-window time-series sampling period (quanta), when armed.
    sample_every: Option<u64>,
}

impl MemconEngine {
    /// Creates an engine with the default rate oracle
    /// ([`DEFAULT_FAIL_RATE`]).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn new(config: MemconConfig, n_pages: u64) -> Self {
        Self::with_oracle(
            config,
            n_pages,
            Box::new(RateOracle::new(DEFAULT_FAIL_RATE, 0x5EED)),
        )
    }

    /// Creates an engine with an explicit failure oracle.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn with_oracle(config: MemconConfig, n_pages: u64, oracle: Box<dyn FailureOracle>) -> Self {
        config.validate().expect("invalid MEMCON configuration");
        let cost = config.cost_model();
        // Staging: the paper reserves 512 rows/bank on an 8-bank module.
        let staging = 512 * 8;
        let tests = TestEngine::new(
            oracle,
            config.test_mode,
            config.lo_ms,
            config.concurrent_tests,
            staging,
        );
        MemconEngine {
            cost,
            pril: Pril::new(n_pages, config.write_buffer_capacity),
            tests,
            n_pages,
            last_states: Vec::new(),
            generation: vec![0; n_pages as usize],
            lo_anchor: vec![None; n_pages as usize],
            tests_correct: 0,
            tests_mispredicted: 0,
            outcome_buf: Vec::new(),
            fault_plan: None,
            attempts: vec![0; n_pages as usize],
            retry_at: vec![None; n_pages as usize],
            retry_queue: Vec::new(),
            clean_gen: vec![None; n_pages as usize],
            quantum_index: 0,
            recovery: RecoveryStats::default(),
            last_pinned: Vec::new(),
            run: None,
            sample_every: None,
            config,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemconConfig {
        &self.config
    }

    /// Sets an explicit fault plan for subsequent runs (takes precedence
    /// over a globally installed plan; `None` falls back to the global
    /// installer). Thread-safe alternative to [`faultinject::install`] for
    /// parallel harnesses: each engine owns its plan and session.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault_plan = plan;
    }

    /// Recovery statistics of the most recent run.
    #[must_use]
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Arms quantum-window time-series sampling: every `Some(n)`-th
    /// quantum boundary takes a [`telemetry`] sample point (counter deltas
    /// plus engine gauges; tick = quantum index). **Single-engine drivers
    /// only** — sampling from engines stepped concurrently would
    /// interleave ring points nondeterministically and break the
    /// `--jobs` byte-identity of the deterministic report section. Fleet
    /// runs sample post-barrier per epoch instead and must leave this
    /// disarmed.
    pub fn set_sample_every(&mut self, every: Option<u64>) {
        self.sample_every = every.filter(|n| *n > 0);
    }

    /// Instantaneous observability snapshot (see [`LiveStats`]). Mid-run
    /// the gauges read the live refresh manager; after a finished run they
    /// read the final state.
    #[must_use]
    pub fn live_stats(&self) -> LiveStats {
        let t = &self.tests.stats;
        let faults_injected = self
            .tests
            .fault_session()
            .map_or(0, FaultSession::total_injected);
        let (pinned_pages, degraded_rows) = match &self.run {
            Some(run) => (run.mgr.pinned_count(), run.mgr.pin_events()),
            None => (
                self.last_pinned.iter().filter(|p| **p).count() as u64,
                self.recovery.degraded_rows,
            ),
        };
        LiveStats {
            faults_injected,
            aborts: t.aborted,
            retries: self.recovery.retries,
            backoffs_scheduled: self.recovery.backoffs_scheduled,
            backoff_ceiling_hits: self.recovery.backoff_ceiling_hits,
            degraded_rows,
            escapes: self.recovery.uncorrectable_escapes,
            pinned_pages,
            pril_buffered: self.pril.buffer_len() as u64,
            pril_capacity: self.config.write_buffer_capacity as u64,
            pages: self.n_pages,
        }
    }

    /// Checks the refresh-correctness invariant over the last run's final
    /// state: every page left at LO-REF must have a clean passing test of
    /// its **current** content generation, and must not be pinned by the
    /// fail-safe degradation rule.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating page.
    pub fn verify_refresh_correctness(&self) -> Result<(), String> {
        for (i, s) in self.last_states.iter().enumerate() {
            if *s != PageState::LoRef {
                continue;
            }
            if self.last_pinned.get(i).copied().unwrap_or(false) {
                return Err(format!("page {i} is pinned yet sits at LO-REF"));
            }
            let current = self.generation[i];
            if self.clean_gen[i] != Some(current) {
                return Err(format!(
                    "page {i} sits at LO-REF at generation {current} without a clean \
                     passing test of that content (last clean: {:?})",
                    self.clean_gen[i]
                ));
            }
        }
        Ok(())
    }

    /// Runs the engine over a complete trace and reports. Equivalent to
    /// [`MemconEngine::begin_run`], one [`MemconEngine::advance_until`] to
    /// the trace horizon, and [`MemconEngine::finish_run`] — stepped and
    /// whole-trace runs share one code path, so they are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the trace pages exceed the engine's page count.
    pub fn run(&mut self, trace: &WriteTrace) -> MemconReport {
        let _span = telemetry::tree_span("memcon.run");
        self.begin_run(trace);
        self.advance_until(trace, trace.duration_ns());
        self.finish_run()
    }

    /// Starts a stepped run: resets all per-run state, arms the fault
    /// session, and performs the steady-state pre-pass. Follow with
    /// [`MemconEngine::advance_until`] calls (monotone limits) and one
    /// [`MemconEngine::finish_run`]. Any previously in-progress stepped run
    /// is discarded, exactly as a fresh [`MemconEngine::run`] would.
    ///
    /// # Panics
    ///
    /// Panics if the trace pages exceed the engine's page count.
    pub fn begin_run(&mut self, trace: &WriteTrace) {
        assert!(
            trace.n_pages() <= self.n_pages,
            "trace has more pages than the engine tracks"
        );
        // Each run starts fresh: clear predictor state, in-flight tests, and
        // per-page bookkeeping left over from any previous trace.
        self.pril = Pril::new(self.n_pages, self.config.write_buffer_capacity);
        self.tests.cancel_all();
        self.tests.stats = TestEngineStats::default();
        self.generation.iter_mut().for_each(|g| *g = 0);
        self.lo_anchor.iter_mut().for_each(|a| *a = None);
        self.tests_correct = 0;
        self.tests_mispredicted = 0;
        self.attempts.iter_mut().for_each(|a| *a = 0);
        self.retry_at.iter_mut().for_each(|r| *r = None);
        self.retry_queue.clear();
        self.clean_gen.iter_mut().for_each(|c| *c = None);
        self.quantum_index = 0;
        self.recovery = RecoveryStats::default();
        // A fresh session per run: the decision streams replay, so the same
        // trace and plan reproduce the same faults bit-for-bit.
        let session = self
            .fault_plan
            .as_ref()
            .map(|p| FaultSession::with_plan(Arc::clone(p)))
            .or_else(FaultSession::begin);
        self.tests.set_fault_session(session);
        // Memo counters persist across runs (the memo itself is the point);
        // snapshot them so telemetry reports this run's delta, including the
        // steady-state pre-pass below.
        let memo_before = self.tests.memo_counters().unwrap_or_default();
        let mut mgr = RefreshManager::new(self.n_pages, self.config.hi_ms, self.config.lo_ms);
        if self.config.steady_state_start {
            // The trace window opens on a long-running system: every page
            // holding static content was tested before the window; clean
            // pages already sit at LO-REF (failing ones stay HI-REF). These
            // pre-window tests are not counted in this run's statistics.
            for page in 0..self.n_pages {
                if !self.tests.oracle_mut().page_fails(page, 0) {
                    mgr.transition(page, PageState::LoRef, 0);
                    // No amortization anchor: the test cost was paid before
                    // the window, so it never counts as a misprediction.
                    self.clean_gen[page as usize] = Some(0);
                }
            }
        }
        let quantum_ns = (self.config.quantum_ms * 1e6) as u64;
        self.run = Some(RunState {
            mgr,
            event_idx: 0,
            next_quantum: quantum_ns,
            quantum_ns,
            mwi_ns: (self.config.min_write_interval_ms() * 1e6) as u64,
            duration: trace.duration_ns(),
            memo_before,
        });
    }

    /// Advances the stepped run through every happening (test completion,
    /// quantum boundary, write event) at or before `limit_ns`, in exact
    /// timeline order. Splitting a run at arbitrary limits cannot reorder
    /// happenings: the loop always picks the globally earliest next one, so
    /// a limit only decides *when* the loop pauses, never *what* it does.
    ///
    /// # Panics
    ///
    /// Panics if no run is in progress (call [`MemconEngine::begin_run`]).
    pub fn advance_until(&mut self, trace: &WriteTrace, limit_ns: u64) {
        let mut run = self
            .run
            .take()
            .expect("advance_until without begin_run in progress");
        let limit = limit_ns.min(run.duration);
        let events = trace.events();
        loop {
            let t_event = events.get(run.event_idx).map(|e| e.time_ns);
            let t_test = self.tests.next_completion_ns();
            let t_quantum = (run.next_quantum <= run.duration).then_some(run.next_quantum);
            // Earliest happening; completions tie-break first so a test that
            // ends exactly when a write arrives completes before the write
            // invalidates it (the write targets the *new* content).
            let next = [t_test, t_quantum, t_event].into_iter().flatten().min();
            let Some(now) = next else { break };
            if now > limit {
                break;
            }

            if t_test == Some(now) {
                self.handle_completions(now, &mut run.mgr, run.duration);
                continue;
            }
            if t_quantum == Some(now) {
                self.handle_quantum(now, &mut run.mgr, run.mwi_ns);
                run.next_quantum += run.quantum_ns;
                continue;
            }
            let e = events[run.event_idx];
            run.event_idx += 1;
            self.handle_write(e.page, e.time_ns, &mut run.mgr, run.mwi_ns);
        }
        self.run = Some(run);
    }

    /// Completes a stepped run: drains horizon completions, finalizes the
    /// refresh timeline, flushes telemetry, and reports. Happenings after
    /// the last `advance_until` limit are **not** processed — step to the
    /// trace horizon first.
    ///
    /// # Panics
    ///
    /// Panics if no run is in progress (call [`MemconEngine::begin_run`]).
    pub fn finish_run(&mut self) -> MemconReport {
        let mut run = self
            .run
            .take()
            .expect("finish_run without begin_run in progress");
        let RunState {
            duration,
            memo_before,
            ..
        } = run;
        let mgr = &mut run.mgr;
        // Drain tests completing exactly at the horizon.
        self.handle_completions(duration, mgr, duration);
        mgr.finalize(duration);
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = mgr.check_invariants() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("RefreshManager invariant violation at finalization: {e}");
            }
        }

        // Censored LO residencies: pages still at LO-REF at the end count as
        // correct — the paper classifies a test as mispredicted only when an
        // early rewrite is actually observed.
        for anchor in &mut self.lo_anchor {
            if anchor.take().is_some() {
                self.tests_correct += 1;
            }
        }

        self.last_states = (0..self.n_pages).map(|p| mgr.state(p)).collect();
        self.last_pinned = (0..self.n_pages).map(|p| mgr.is_pinned(p)).collect();
        let t = self.tests.stats;
        self.recovery.aborts = t.aborted;
        self.recovery.ambiguous = t.ambiguous;
        self.recovery.ecc_corrected = t.ecc_corrected;
        self.recovery.ecc_uncorrectable = t.ecc_uncorrectable;
        self.recovery.degraded_rows = mgr.pin_events();
        if let Some(session) = self.tests.fault_session() {
            self.recovery.faults_injected = session.injected_counts();
        }
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = self.verify_refresh_correctness() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("refresh-correctness violation at end of run: {e}");
            }
        }
        if telemetry::enabled() {
            self.flush_telemetry(&mgr, memo_before);
        }
        let test_cost = self.cost.test_cost_ns(self.config.test_mode);
        let refresh_ops = mgr.refresh_ops();
        let baseline_ops = mgr.baseline_ops();
        MemconReport {
            refresh_reduction: mgr.reduction(),
            upper_bound: self.cost.upper_bound_reduction(),
            lo_coverage: mgr.lo_coverage(),
            testing_fraction: mgr.testing_fraction(),
            refresh_ops,
            baseline_ops,
            tests_correct: self.tests_correct,
            tests_mispredicted: self.tests_mispredicted,
            refresh_time_ns: refresh_ops * self.cost.refresh_op_ns,
            baseline_refresh_time_ns: baseline_ops * self.cost.refresh_op_ns,
            test_time_correct_ns: self.tests_correct as f64 * test_cost,
            test_time_mispredicted_ns: self.tests_mispredicted as f64 * test_cost,
            duration_ns: duration,
            n_pages: self.n_pages,
        }
    }

    /// Final per-page refresh states of the most recent run (empty before
    /// any run). The reliability guarantee is that every page reported
    /// `LoRef` here passed a content test after its last write.
    #[must_use]
    pub fn final_states(&self) -> &[PageState] {
        &self.last_states
    }

    /// Post-run component statistics.
    #[must_use]
    pub fn internals(&self) -> EngineInternals {
        EngineInternals {
            pril: self.pril.stats,
            tests: self.tests.stats,
            recovery: self.recovery,
        }
    }

    fn handle_write(&mut self, page: PageId, now: u64, mgr: &mut RefreshManager, mwi_ns: u64) {
        self.generation[page as usize] += 1;
        if self.tests.abort(page) {
            // The content under test changed before the verdict: the test
            // can never be amortized.
            self.tests_mispredicted += 1;
            mgr.transition(page, PageState::HiRef, now);
            self.note_failed_attempt(page, now, mgr, false);
        } else {
            match mgr.state(page) {
                PageState::LoRef => {
                    if let Some(start) = self.lo_anchor[page as usize].take() {
                        if now - start >= mwi_ns {
                            self.tests_correct += 1;
                        } else {
                            self.tests_mispredicted += 1;
                        }
                    }
                    mgr.transition(page, PageState::HiRef, now);
                }
                PageState::HiRef => {} // already aggressive; no transition
                PageState::Testing => unreachable!("abort() handles in-test pages"),
            }
        }
        // A write resets PRIL idleness; an armed retry must honor it too
        // (don't re-test immediately): the earliest retry is the boundary
        // after the next — the page's first full idle quantum — exactly
        // when PRIL itself would re-nominate the page.
        if let Some(due) = &mut self.retry_at[page as usize] {
            *due = (*due).max(self.quantum_index + 2);
        }
        self.pril.on_write(page);
    }

    /// Records an aborted/ambiguous test attempt on `page` and arms the
    /// abort/retry machinery: pages are re-tested only after a capped
    /// exponential backoff (in quanta), and after [`RecoveryPolicy`]'s
    /// attempt budget — or any uncorrectable ECC error — the page is pinned
    /// to the high-refresh bin until a definitive verdict clears it.
    ///
    /// [`RecoveryPolicy`]: crate::config::RecoveryPolicy
    fn note_failed_attempt(
        &mut self,
        page: PageId,
        now: u64,
        mgr: &mut RefreshManager,
        uncorrectable: bool,
    ) {
        let policy = self.config.recovery;
        let slot = &mut self.attempts[page as usize];
        *slot = slot.saturating_add(1);
        let attempts = *slot;
        if uncorrectable || attempts >= policy.max_attempts {
            mgr.pin_high(page, now);
        }
        let backoff =
            (1u64 << u64::from((attempts - 1).min(31))).min(u64::from(policy.backoff_cap_quanta));
        self.recovery.backoffs_scheduled += 1;
        if backoff == u64::from(policy.backoff_cap_quanta) {
            self.recovery.backoff_ceiling_hits += 1;
        }
        self.recovery.backoff_hist[backoff_bucket(backoff)] += 1;
        if telemetry::enabled() {
            telemetry::observe("memcon.recovery.backoff_quanta", &BACKOFF_EDGES, backoff);
        }
        if self.retry_at[page as usize].is_none() {
            self.retry_queue.push(page);
        }
        self.retry_at[page as usize] = Some(self.quantum_index + backoff);
    }

    /// A definitive (non-ambiguous) verdict resets the attempt counter and
    /// releases any fail-safe pin. Pin release must precede a LO-REF
    /// transition — the refresh manager rejects LO-REF for pinned pages.
    fn clear_attempts(&mut self, page: PageId, mgr: &mut RefreshManager) {
        self.attempts[page as usize] = 0;
        self.retry_at[page as usize] = None;
        mgr.release_pin(page);
    }

    /// Folds one run's component statistics into the current telemetry
    /// registry. All values derive from simulation state, so they are
    /// deterministic; called once at the end of [`MemconEngine::run`] rather
    /// than per-event to keep the hot loop telemetry-free.
    fn flush_telemetry(&self, mgr: &RefreshManager, memo_before: crate::testengine::MemoStats) {
        let p = self.pril.stats;
        telemetry::count("memcon.pril.writes", p.writes);
        telemetry::count("memcon.pril.inserted", p.inserted);
        telemetry::count("memcon.pril.evicted_repeat", p.evicted_repeat);
        telemetry::count("memcon.pril.evicted_previous", p.evicted_previous);
        telemetry::count("memcon.pril.overflowed", p.overflowed);
        telemetry::count("memcon.pril.candidates", p.candidates);
        telemetry::count("memcon.pril.quanta", p.quanta);
        let t = self.tests.stats;
        telemetry::count("memcon.tests.started", t.started);
        telemetry::count("memcon.tests.completed", t.completed);
        telemetry::count("memcon.tests.failed", t.failed);
        telemetry::count("memcon.tests.aborted", t.aborted);
        telemetry::count("memcon.tests.rejected", t.rejected);
        if let Some(memo) = self.tests.memo_counters() {
            telemetry::count(
                "memcon.oracle.memo_hits",
                memo.hits.saturating_sub(memo_before.hits),
            );
            telemetry::count(
                "memcon.oracle.memo_misses",
                memo.misses.saturating_sub(memo_before.misses),
            );
        }
        telemetry::count("memcon.engine.tests_correct", self.tests_correct);
        telemetry::count("memcon.engine.tests_mispredicted", self.tests_mispredicted);
        let (to_hi, to_testing, to_lo) = mgr.transition_counts();
        telemetry::count("memcon.refresh.to_hi", to_hi);
        telemetry::count("memcon.refresh.to_testing", to_testing);
        telemetry::count("memcon.refresh.to_lo", to_lo);
        let mut finals = [0u64; 3];
        for s in &self.last_states {
            finals[match s {
                PageState::HiRef => 0,
                PageState::Testing => 1,
                PageState::LoRef => 2,
            }] += 1;
        }
        telemetry::count("memcon.refresh.final_hi", finals[0]);
        telemetry::count("memcon.refresh.final_testing", finals[1]);
        telemetry::count("memcon.refresh.final_lo", finals[2]);
        // Fault-injection and recovery counters. Zero-valued fault.* entries
        // are emitted even with no plan installed so the report shape stays
        // stable across chaos and plain runs.
        let r = &self.recovery;
        for site in Site::ALL {
            telemetry::count(
                &format!("fault.{}", site.name()),
                r.faults_injected[site as usize],
            );
        }
        telemetry::count("memcon.recovery.aborts", r.aborts);
        telemetry::count("memcon.recovery.retries", r.retries);
        telemetry::count("memcon.recovery.backoffs_scheduled", r.backoffs_scheduled);
        telemetry::count(
            "memcon.recovery.backoff_ceiling_hits",
            r.backoff_ceiling_hits,
        );
        telemetry::count("memcon.recovery.degraded_rows", r.degraded_rows);
        telemetry::count("memcon.recovery.ambiguous", r.ambiguous);
        telemetry::count("memcon.recovery.ecc_corrected", r.ecc_corrected);
        telemetry::count("memcon.recovery.ecc_uncorrectable", r.ecc_uncorrectable);
        telemetry::count(
            "memcon.recovery.uncorrectable_escapes",
            r.uncorrectable_escapes,
        );
    }

    fn handle_quantum(&mut self, now: u64, mgr: &mut RefreshManager, mwi_ns: u64) {
        self.quantum_index += 1;
        // Injected test preemption: model a rogue write landing on whichever
        // page is under test, forcing the abort/retry path.
        if let Some(victim) = self.tests.any_in_flight_page() {
            let fired = self
                .tests
                .fault_session_mut()
                .is_some_and(|s| s.fires(Site::TestPreempt));
            if fired {
                self.handle_write(victim, now, mgr, mwi_ns);
            }
        }
        // Drain the retry queue first: backed-off pages have priority over
        // fresh PRIL candidates for the concurrent-test budget.
        let mut still_armed = Vec::new();
        for page in std::mem::take(&mut self.retry_queue) {
            let Some(due) = self.retry_at[page as usize] else {
                continue; // disarmed by a definitive verdict meanwhile
            };
            if self.quantum_index < due {
                still_armed.push(page);
                continue;
            }
            let generation = self.generation[page as usize];
            if self.tests.try_start(page, generation, now) {
                self.retry_at[page as usize] = None;
                self.recovery.retries += 1;
                mgr.transition(page, PageState::Testing, now);
                if telemetry::enabled() {
                    telemetry::annotate("memcon.test_retry", page);
                }
            } else {
                still_armed.push(page); // no slot free; keep armed
            }
        }
        self.retry_queue = still_armed;
        let candidates = self.pril.end_quantum();
        if telemetry::enabled() {
            telemetry::observe(
                "memcon.pril.quantum_candidates",
                &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256],
                candidates.len() as u64,
            );
        }
        for page in candidates {
            // A nominated page can be mid-retry-backoff or already under a
            // retry test started above; the retry machinery owns it.
            if self.retry_at[page as usize].is_some() || mgr.state(page) != PageState::HiRef {
                continue;
            }
            let generation = self.generation[page as usize];
            if self.tests.try_start(page, generation, now) {
                mgr.transition(page, PageState::Testing, now);
                if telemetry::enabled() {
                    telemetry::annotate("memcon.test_start", page);
                }
            }
        }
        if let Some(every) = self.sample_every {
            if self.quantum_index % every == 0 && telemetry::enabled() {
                self.sample_quantum(mgr);
            }
        }
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = self.pril.check_invariants() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("PRIL invariant violation at quantum boundary ({now} ns): {e}");
            }
            if let Err(e) = mgr.check_invariants() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("RefreshManager invariant violation at quantum boundary ({now} ns): {e}");
            }
        }
    }

    /// Takes a quantum-window time-series sample (see
    /// [`MemconEngine::set_sample_every`]): engine gauges read from the
    /// live refresh manager, tick = quantum index.
    fn sample_quantum(&self, mgr: &RefreshManager) {
        telemetry::sample_point(
            self.quantum_index,
            &[
                ("memcon.gauge.pinned_pages", mgr.pinned_count()),
                ("memcon.gauge.pril_buffered", self.pril.buffer_len() as u64),
                (
                    "memcon.gauge.pril_capacity",
                    self.config.write_buffer_capacity as u64,
                ),
                ("memcon.gauge.pages", self.n_pages),
            ],
        );
    }

    fn handle_completions(&mut self, now: u64, mgr: &mut RefreshManager, duration: u64) {
        let mut outcomes = std::mem::take(&mut self.outcome_buf);
        self.tests.poll_into(now, &mut outcomes);
        for outcome in &outcomes {
            let end = outcome.end_ns.min(duration);
            let page = outcome.page;
            match outcome.verdict {
                Verdict::Fail => {
                    self.clear_attempts(page, mgr);
                    mgr.transition(page, PageState::HiRef, end);
                    // A detected failure is a *correct* engagement of the
                    // mechanism: the test did its protective job.
                    self.tests_correct += 1;
                }
                Verdict::Pass => {
                    self.clear_attempts(page, mgr);
                    mgr.transition(page, PageState::LoRef, end);
                    self.clean_gen[page as usize] = Some(outcome.generation);
                    self.lo_anchor[page as usize] = Some(outcome.start_ns);
                }
                Verdict::Ambiguous => {
                    // Torn read-back, oracle disagreement, or uncorrectable
                    // ECC: no verdict about the content — the conservative
                    // response is HI-REF plus a backed-off retry.
                    self.tests_mispredicted += 1;
                    mgr.transition(page, PageState::HiRef, end);
                    self.note_failed_attempt(
                        page,
                        end,
                        mgr,
                        outcome.ecc == EccEvent::Uncorrectable,
                    );
                }
            }
            if outcome.ecc == EccEvent::Uncorrectable && !mgr.is_pinned(page) {
                self.recovery.uncorrectable_escapes += 1;
            }
        }
        self.outcome_buf = outcomes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::trace::{WriteEvent, WriteTrace};
    use memtrace::workload::WorkloadProfile;

    const MS: u64 = 1_000_000;

    fn ev(t_ms: u64, page: u64) -> WriteEvent {
        WriteEvent {
            time_ns: t_ms * MS,
            page,
        }
    }

    fn cfg() -> MemconConfig {
        MemconConfig::paper_default()
    }

    fn clean_engine(n_pages: u64) -> MemconEngine {
        MemconEngine::with_oracle(cfg(), n_pages, Box::new(RateOracle::new(0.0, 0)))
    }

    #[test]
    fn idle_page_reaches_lo_ref() {
        // One write at t=0, then 20 s of silence: tested after two quanta,
        // LO-REF for the rest.
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        // Test starts at 2048 ms (first boundary after the full idle
        // quantum following the write quantum), completes at 2112 ms.
        // LO time = 20480 - 2112 = 18368 ms of 20480 => ~89.7% coverage.
        assert!(
            (r.lo_coverage - 18_368.0 / 20_480.0).abs() < 1e-6,
            "coverage {}",
            r.lo_coverage
        );
        assert_eq!(r.tests_correct, 1);
        assert_eq!(r.tests_mispredicted, 0);
        assert!(r.refresh_reduction > 0.6);
        assert!(r.refresh_reduction < r.upper_bound);
    }

    #[test]
    fn busy_page_stays_hi_ref() {
        // Writes every 100 ms: never a full idle quantum, never tested.
        let events: Vec<WriteEvent> = (0..200).map(|i| ev(i * 100, 0)).collect();
        let trace = WriteTrace::new(events, 20_000 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(r.lo_coverage, 0.0);
        assert_eq!(e.internals().tests.started, 0);
        assert!(r.refresh_reduction.abs() < 1e-9);
    }

    #[test]
    fn failing_rows_stay_hi_ref() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = MemconEngine::with_oracle(cfg(), 1, Box::new(RateOracle::new(1.0, 0)));
        let r = e.run(&trace);
        assert_eq!(r.lo_coverage, 0.0);
        assert_eq!(e.internals().tests.failed, 1);
        // Testing time (64 ms of 20480) is unrefreshed, so reduction is
        // marginally positive but tiny.
        assert!(r.refresh_reduction < 0.01);
    }

    #[test]
    fn early_rewrite_counts_as_misprediction() {
        // Write at 0; idle through quantum 1; tested at 2048 (ends 2112);
        // rewritten at 2200 ms — far below MinWriteInterval (560 ms) after
        // the test started.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(2200, 0)], 4096 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(r.tests_mispredicted, 1);
        // The rewrite re-qualifies the page: written once in quantum
        // (2048..3072], idle in (3072..4096] => re-tested at 4096 = horizon.
        assert_eq!(r.tests_correct, 0);
    }

    #[test]
    fn write_during_test_aborts_and_counts_mispredicted() {
        // Write at 0; tested at 2048; write at 2080 lands mid-test.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(2080, 0)], 8192 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(e.internals().tests.aborted, 1);
        assert_eq!(r.tests_mispredicted, 1);
        // The abort arms a retry, but the preempting write resets PRIL
        // idleness, so the retry waits for a full idle quantum: re-tested
        // at the 4096 ms boundary, passing at 4160 ms, LO-REF for the
        // remaining 4032 ms of the 8192 ms window.
        let rec = e.recovery_stats();
        assert_eq!(rec.aborts, 1);
        assert_eq!(rec.backoffs_scheduled, 1);
        assert_eq!(rec.backoff_hist[0], 1, "first attempt backs off 1 quantum");
        assert_eq!(rec.retries, 1);
        assert!(
            (r.lo_coverage - 4032.0 / 8192.0).abs() < 1e-9,
            "coverage {}",
            r.lo_coverage
        );
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn late_rewrite_counts_as_correct() {
        // Rewrite 5 s after the test: well past MinWriteInterval.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(7000, 0)], 8192 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(r.tests_correct, 1);
        assert_eq!(r.tests_mispredicted, 0);
    }

    #[test]
    fn concurrent_test_budget_limits_starts() {
        let mut config = cfg();
        config.concurrent_tests = 2;
        // 10 pages all written at t=0 and idle after.
        let events: Vec<WriteEvent> = (0..10).map(|p| ev(0, p)).collect();
        let trace = WriteTrace::new(events, 4096 * MS, 10);
        let mut e = MemconEngine::with_oracle(config, 10, Box::new(RateOracle::new(0.0, 0)));
        let _ = e.run(&trace);
        let t = e.internals().tests;
        assert_eq!(t.started, 2, "only two slots at the 2048 ms boundary");
        assert!(t.rejected >= 8);
    }

    #[test]
    fn quantum_size_matters_for_test_onset() {
        for quantum in [512.0, 1024.0, 2048.0] {
            let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
            let mut e = MemconEngine::with_oracle(
                cfg().with_quantum_ms(quantum),
                1,
                Box::new(RateOracle::new(0.0, 0)),
            );
            let r = e.run(&trace);
            // Earlier quanta => earlier LO-REF => more coverage.
            let expected_lo_ms = 20_480.0 - (2.0 * quantum + 64.0);
            assert!(
                (r.lo_coverage - expected_lo_ms / 20_480.0).abs() < 1e-6,
                "quantum {quantum}: coverage {}",
                r.lo_coverage
            );
        }
    }

    #[test]
    fn real_workload_reduction_in_paper_band() {
        // Paper Fig. 14: reductions of 64.7-74.5% against the 75% bound.
        let trace = WorkloadProfile::netflix().scaled(0.05).generate(3);
        let mut e = MemconEngine::new(cfg(), trace.n_pages());
        let r = e.run(&trace);
        assert!(
            (0.55..0.75).contains(&r.refresh_reduction),
            "reduction {}",
            r.refresh_reduction
        );
        assert!(r.lo_coverage > 0.7, "coverage {}", r.lo_coverage);
        assert!(r.normalized_refresh_and_test_time() < 0.45);
    }

    #[test]
    fn fig18_testing_time_is_negligible() {
        let trace = WorkloadProfile::ac_brotherhood().scaled(0.05).generate(5);
        let mut e = MemconEngine::new(cfg(), trace.n_pages());
        let r = e.run(&trace);
        let test_frac =
            (r.test_time_correct_ns + r.test_time_mispredicted_ns) / r.baseline_refresh_time_ns;
        // Paper: testing is ~0.01% of baseline refresh time. Our simulated
        // pages are rewritten (and hence retested) orders of magnitude more
        // often than the real multi-minute traces' pages to fit the
        // simulation window, so the normalized testing share is inflated;
        // it must still be far below the refresh share (~25-35%).
        assert!(test_frac < 0.05, "testing fraction {test_frac}");
    }

    #[test]
    fn engine_is_reusable_across_runs() {
        // A second run() must start fresh: same trace, same report, even
        // when the first run left a test in flight at the horizon.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(2200, 0)], 4096 * MS, 1);
        let mut e = clean_engine(1);
        let first = e.run(&trace);
        let second = e.run(&trace);
        assert_eq!(first, second);
    }

    #[test]
    fn stepped_run_matches_whole_run() {
        // Slicing a run at awkward, non-quantum-aligned limits must be
        // bit-identical to one whole-trace run — the property the fleet
        // scheduler's epoch batching rests on. Faults armed so the fault
        // decision streams are exercised across slice boundaries too.
        let trace = WorkloadProfile::netflix().scaled(0.02).generate(7);
        let plan = Arc::new(FaultPlan::uniform(0xDEAD_BEEF, 0.05));
        let mut whole = MemconEngine::new(cfg(), trace.n_pages());
        whole.set_fault_plan(Some(Arc::clone(&plan)));
        let r_whole = whole.run(&trace);
        let mut stepped = MemconEngine::new(cfg(), trace.n_pages());
        stepped.set_fault_plan(Some(plan));
        stepped.begin_run(&trace);
        let mut limit = 0u64;
        while limit < trace.duration_ns() {
            limit += 777 * MS; // never aligned with the 1024 ms quantum
            stepped.advance_until(&trace, limit);
        }
        let r_stepped = stepped.finish_run();
        assert_eq!(r_whole, r_stepped);
        assert_eq!(whole.final_states(), stepped.final_states());
        assert_eq!(whole.recovery_stats(), stepped.recovery_stats());
        stepped.verify_refresh_correctness().unwrap();
    }

    #[test]
    #[should_panic(expected = "advance_until without begin_run")]
    fn advance_without_begin_panics() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 100 * MS, 1);
        let mut e = clean_engine(1);
        e.advance_until(&trace, 50 * MS);
    }

    #[test]
    #[should_panic(expected = "more pages than the engine")]
    fn trace_page_bound_checked() {
        let trace = WriteTrace::new(vec![ev(0, 5)], 100 * MS, 6);
        let mut e = clean_engine(2);
        let _ = e.run(&trace);
    }

    use faultinject::{Schedule, SiteSpec};

    fn plan_with(site: Site, spec: SiteSpec) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(0xC0FFEE).with_site(site, spec))
    }

    #[test]
    fn injected_preemptions_drive_abort_retry_and_pinning() {
        // 32 ms quanta with a 64 ms test window: every test spans a quantum
        // boundary, and TestPreempt at rate 1.0 kills it there. Attempts
        // accumulate without a definitive verdict, so the fail-safe pins the
        // page to the high-refresh bin.
        let config = cfg().with_quantum_ms(32.0);
        let trace = WriteTrace::new(vec![ev(0, 0)], 4096 * MS, 1);
        let mut e = MemconEngine::with_oracle(config, 1, Box::new(RateOracle::new(0.0, 0)));
        e.set_fault_plan(Some(plan_with(Site::TestPreempt, SiteSpec::rate(1.0))));
        let r = e.run(&trace);
        let rec = *e.recovery_stats();
        assert!(rec.faults_injected[Site::TestPreempt as usize] > 0);
        assert!(rec.aborts >= 3, "aborts {}", rec.aborts);
        assert!(rec.retries >= 2, "retries {}", rec.retries);
        assert_eq!(rec.degraded_rows, 1, "page pinned exactly once");
        assert_eq!(r.lo_coverage, 0.0, "a never-verified page never drops");
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn torn_reads_back_off_and_eventually_pin() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = clean_engine(1);
        e.set_fault_plan(Some(plan_with(Site::TornRead, SiteSpec::rate(1.0))));
        let r = e.run(&trace);
        let rec = *e.recovery_stats();
        assert!(rec.ambiguous >= 3, "ambiguous {}", rec.ambiguous);
        assert_eq!(rec.degraded_rows, 1);
        assert_eq!(r.lo_coverage, 0.0);
        // Backoff doubles per attempt up to the cap: the histogram must
        // populate multiple buckets.
        assert!(rec.backoff_hist.iter().filter(|&&c| c > 0).count() >= 2);
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn uncorrectable_ecc_pins_immediately_with_zero_escapes() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = clean_engine(1);
        e.set_fault_plan(Some(plan_with(Site::EccUncorrectable, SiteSpec::rate(1.0))));
        let _ = e.run(&trace);
        let rec = *e.recovery_stats();
        assert!(rec.ecc_uncorrectable >= 1);
        assert_eq!(rec.degraded_rows, 1, "pinned on the very first attempt");
        assert_eq!(rec.uncorrectable_escapes, 0);
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn clean_retry_releases_the_pin_and_reaches_lo_ref() {
        // The first two read-backs are torn (Burst at indices 0..2); the
        // page pins after the second attempt (max_attempts = 2), then the
        // third, fault-free retry passes, releases the pin, and drops the
        // page to LO-REF.
        let mut config = cfg();
        config.recovery.max_attempts = 2;
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = MemconEngine::with_oracle(config, 1, Box::new(RateOracle::new(0.0, 0)));
        e.set_fault_plan(Some(plan_with(
            Site::TornRead,
            SiteSpec {
                rate: 1.0,
                schedule: Schedule::Burst { start: 0, len: 2 },
            },
        )));
        let r = e.run(&trace);
        let rec = *e.recovery_stats();
        assert_eq!(rec.ambiguous, 2);
        assert_eq!(rec.retries, 2);
        assert_eq!(rec.degraded_rows, 1, "pinned once, then released");
        assert_eq!(e.final_states()[0], PageState::LoRef);
        assert!(r.lo_coverage > 0.7, "coverage {}", r.lo_coverage);
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn faulted_runs_are_bit_reproducible() {
        // Two independently constructed engines with the same oracle seed,
        // trace, and plan must agree bit-for-bit — the property the chaos
        // gate's jobs=1 vs jobs=4 byte-comparison rests on. (Re-running the
        // *same* engine is only reproducible for stateless oracles: the
        // rate oracle deliberately draws from one RNG stream.)
        let trace = WorkloadProfile::netflix().scaled(0.02).generate(7);
        let plan = Arc::new(FaultPlan::uniform(0xDEAD_BEEF, 0.05));
        let run = |plan: &Arc<FaultPlan>| {
            let mut e = MemconEngine::new(cfg(), trace.n_pages());
            e.set_fault_plan(Some(Arc::clone(plan)));
            let report = e.run(&trace);
            e.verify_refresh_correctness().unwrap();
            (report, *e.recovery_stats(), e.final_states().to_vec())
        };
        let (r1, rec1, states1) = run(&plan);
        let (r2, rec2, states2) = run(&plan);
        assert_eq!(r1, r2);
        assert_eq!(rec1, rec2);
        assert_eq!(states1, states2);
        assert!(rec1.faults_injected.iter().sum::<u64>() > 0);
    }
}
