//! The end-to-end MEMCON engine.
//!
//! Feed a page-granularity write trace through [`MemconEngine::run`] and it
//! executes the full mechanism of paper Sections 3–4 on a faithful timeline:
//!
//! 1. every write sends its page to HI-REF (and aborts any in-flight test of
//!    that page — the content under test just changed),
//! 2. PRIL watches writes across quanta; at each quantum boundary its
//!    candidates (pages idle for more than a quantum) start content tests,
//!    bounded by the concurrent-test budget,
//! 3. a test keeps the row unrefreshed for one LO-REF window, then the
//!    failure oracle delivers the verdict: clean rows drop to LO-REF,
//!    failing rows stay at HI-REF,
//! 4. time-in-state is integrated exactly, yielding the refresh-operation
//!    reduction (Fig. 14), LO-REF coverage (Fig. 17), and the
//!    testing-vs-refresh time split (Fig. 18), including the misprediction
//!    accounting (a test is mispredicted when its page is rewritten before
//!    `MinWriteInterval` elapses, so the test cost is never amortized).

use std::path::Path;
use std::sync::Arc;

use faultinject::{FaultPlan, FaultSession, Site};
use memtrace::trace::WriteTrace;
use memutil::codec::{Dec, Enc};
use store::{DurabilityMode, Record, Recovered, Store, StoreError};

use crate::config::MemconConfig;
use crate::cost::{CostModel, TestMode};
use crate::pril::{PageId, Pril, PrilStats};
use crate::refreshmgr::{PageState, RefreshManager};
use crate::testengine::{
    EccEvent, FailureOracle, MemoStats, RateOracle, TestEngine, TestEngineStats, Verdict,
};

/// Default Bernoulli failing-row rate for trace-scale runs (the middle of
/// the paper's Fig. 4 band of 0.38–5.6 %).
pub const DEFAULT_FAIL_RATE: f64 = 0.015;

/// Histogram edges (in quanta) of the retry-backoff distribution.
pub const BACKOFF_EDGES: [u64; 5] = [1, 2, 4, 8, 16];

/// Histogram edges (candidate count) of the per-quantum PRIL candidate
/// distribution.
pub const CANDIDATE_EDGES: [u64; 10] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Engine snapshot payload format version (the first payload byte).
const SNAP_VERSION: u8 = 1;

/// Run-level recovery accounting: what the fault injector did to the run
/// and how the abort/retry/degradation machinery responded. All values
/// derive from simulation state, so the whole struct is bit-reproducible
/// for a fixed trace and [`FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Faults injected per site, indexed like [`Site::ALL`]; all zero when
    /// no plan is active.
    pub faults_injected: [u64; faultinject::N_SITES],
    /// Tests aborted by (real or injected) preempting writes.
    pub aborts: u64,
    /// Tests restarted from the backoff queue.
    pub retries: u64,
    /// Backoffs scheduled (one per aborted/ambiguous attempt).
    pub backoffs_scheduled: u64,
    /// Backoffs clamped at [`RecoveryPolicy::backoff_cap_quanta`] — the
    /// page keeps failing attempts after the exponential schedule maxed
    /// out, a saturation signal the health monitor watches.
    ///
    /// [`RecoveryPolicy::backoff_cap_quanta`]: crate::config::RecoveryPolicy
    pub backoff_ceiling_hits: u64,
    /// Backoff-length distribution, bucketed by [`BACKOFF_EDGES`]
    /// (≤1, ≤2, ≤4, ≤8, ≤16, >16 quanta).
    pub backoff_hist: [u64; 6],
    /// Sum of all scheduled backoff lengths in quanta (the histogram's
    /// exact sum, flushed to telemetry with the bucket counts).
    pub backoff_sum_quanta: u64,
    /// Pages pinned to the high-refresh bin by the fail-safe degradation
    /// rule (pin events; a page unpinned by a clean test and pinned again
    /// counts twice).
    pub degraded_rows: u64,
    /// Completed tests with an ambiguous verdict.
    pub ambiguous: u64,
    /// Single-bit ECC corrections during read-backs.
    pub ecc_corrected: u64,
    /// Uncorrectable ECC errors during read-backs.
    pub ecc_uncorrectable: u64,
    /// Uncorrectable ECC errors that did **not** leave their page pinned —
    /// must stay 0 (asserted by the chaos gate).
    pub uncorrectable_escapes: u64,
}

fn backoff_bucket(quanta: u64) -> usize {
    BACKOFF_EDGES
        .iter()
        .position(|&e| quanta <= e)
        .unwrap_or(BACKOFF_EDGES.len())
}

fn candidate_bucket(count: u64) -> usize {
    CANDIDATE_EDGES
        .iter()
        .position(|&e| count <= e)
        .unwrap_or(CANDIDATE_EDGES.len())
}

fn opt_u64(e: &mut Enc, v: Option<u64>) {
    match v {
        Some(x) => {
            e.bool(true);
            e.u64(x);
        }
        None => e.bool(false),
    }
}

fn read_opt_u64(d: &mut Dec) -> Result<Option<u64>, String> {
    Ok(if d.bool()? { Some(d.u64()?) } else { None })
}

fn site_counts(v: Vec<u64>, what: &str) -> Result<[u64; faultinject::N_SITES], String> {
    v.try_into()
        .map_err(|_| format!("{what}: expected one counter per fault site"))
}

/// Everything the paper's Figs. 14, 17, and 18 need from one engine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemconReport {
    /// Refresh-operation reduction vs the all-HI-REF baseline (Fig. 14).
    pub refresh_reduction: f64,
    /// The reduction if every page ran at LO-REF always (75 % for 16/64 ms).
    pub upper_bound: f64,
    /// Fraction of page-time at LO-REF (Fig. 17).
    pub lo_coverage: f64,
    /// Fraction of page-time under test.
    pub testing_fraction: f64,
    /// Refresh operations MEMCON performed.
    pub refresh_ops: f64,
    /// Refresh operations the baseline would have performed.
    pub baseline_ops: f64,
    /// Completed tests whose LO-REF residency amortized the cost
    /// (no write within MinWriteInterval).
    pub tests_correct: u64,
    /// Tests whose page was rewritten too soon (including aborts).
    pub tests_mispredicted: u64,
    /// Latency spent on refresh operations, ns.
    pub refresh_time_ns: f64,
    /// Latency the baseline would spend on refresh, ns.
    pub baseline_refresh_time_ns: f64,
    /// Latency spent on correctly predicted tests, ns.
    pub test_time_correct_ns: f64,
    /// Latency spent on mispredicted/aborted tests, ns.
    pub test_time_mispredicted_ns: f64,
    /// Trace duration, ns.
    pub duration_ns: u64,
    /// Pages tracked.
    pub n_pages: u64,
}

impl MemconReport {
    /// Fig. 18's y-value: MEMCON's refresh+testing time normalized to the
    /// baseline's refresh time.
    #[must_use]
    pub fn normalized_refresh_and_test_time(&self) -> f64 {
        if self.baseline_refresh_time_ns <= 0.0 {
            return 0.0;
        }
        (self.refresh_time_ns + self.test_time_correct_ns + self.test_time_mispredicted_ns)
            / self.baseline_refresh_time_ns
    }
}

/// Combined statistics (report + component internals) for diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct EngineInternals {
    /// PRIL statistics.
    pub pril: PrilStats,
    /// Test-engine statistics.
    pub tests: TestEngineStats,
    /// Recovery statistics of the last run.
    pub recovery: RecoveryStats,
}

/// Instantaneous observability snapshot of an engine, readable between
/// [`MemconEngine::advance_until`] slices (the fleet scheduler reads one
/// per shard per epoch, post-barrier) or after a finished run. Totals are
/// cumulative for the current run; `pinned_pages` and `pril_buffered` are
/// gauges. All values derive from simulation state — deterministic for a
/// fixed trace and plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Faults injected so far, summed across sites.
    pub faults_injected: u64,
    /// Tests aborted so far.
    pub aborts: u64,
    /// Tests restarted from the backoff queue so far.
    pub retries: u64,
    /// Backoffs scheduled so far.
    pub backoffs_scheduled: u64,
    /// Backoffs clamped at the policy cap so far.
    pub backoff_ceiling_hits: u64,
    /// Fail-safe HI-REF pin events so far.
    pub degraded_rows: u64,
    /// Uncorrectable ECC escapes so far (must stay 0).
    pub escapes: u64,
    /// Pages currently pinned to HI-REF (gauge).
    pub pinned_pages: u64,
    /// PRIL write-buffer occupancy (gauge).
    pub pril_buffered: u64,
    /// PRIL write-buffer capacity.
    pub pril_capacity: u64,
    /// Pages the engine tracks.
    pub pages: u64,
}

/// Persistent state of a stepped run between [`MemconEngine::begin_run`]
/// and [`MemconEngine::finish_run`]. Holding the refresh manager and the
/// event cursor here (instead of on `run`'s stack) is what lets a fleet
/// scheduler advance an engine one time-slice at a time.
#[derive(Debug)]
struct RunState {
    mgr: RefreshManager,
    /// Cursor into `trace.events()`: events before it are consumed.
    event_idx: usize,
    /// Next quantum boundary, ns.
    next_quantum: u64,
    quantum_ns: u64,
    mwi_ns: u64,
    duration: u64,
    /// Oracle memo counters at run start (telemetry reports the delta).
    memo_before: crate::testengine::MemoStats,
}

/// The MEMCON engine.
#[derive(Debug)]
pub struct MemconEngine {
    config: MemconConfig,
    cost: CostModel,
    pril: Pril,
    tests: TestEngine,
    n_pages: u64,
    /// Final per-page states of the last completed run.
    last_states: Vec<PageState>,
    /// Per-page content-generation counter (bumped by every write).
    generation: Vec<u64>,
    /// Pending amortization anchor: Some(test start) while the page sits at
    /// LO-REF un-rewritten.
    lo_anchor: Vec<Option<u64>>,
    tests_correct: u64,
    tests_mispredicted: u64,
    /// Reused completion buffer for [`TestEngine::poll_into`] — the event
    /// loop polls at every write and quantum boundary, so a fresh `Vec` per
    /// poll would dominate allocations.
    outcome_buf: Vec<crate::testengine::TestOutcome>,
    /// Explicit fault plan (takes precedence over the globally installed
    /// one); a fresh [`FaultSession`] is created per run.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Consecutive aborted/ambiguous attempts per page, reset by a clean
    /// verdict.
    attempts: Vec<u32>,
    /// Backoff expiry (quantum index) per page, while a retry is armed.
    retry_at: Vec<Option<u64>>,
    /// Pages with an armed retry, in arming order.
    retry_queue: Vec<PageId>,
    /// Generation of the last clean passing test per page — the evidence
    /// backing the refresh-correctness invariant.
    clean_gen: Vec<Option<u64>>,
    /// Quantum boundaries crossed this run.
    quantum_index: u64,
    recovery: RecoveryStats,
    /// Final per-page pin flags of the last run.
    last_pinned: Vec<bool>,
    /// In-progress stepped run, if any.
    run: Option<RunState>,
    /// Quantum-window time-series sampling period (quanta), when armed.
    sample_every: Option<u64>,
    /// Attached durable store, if any (see [`MemconEngine::attach_store`]).
    store: Option<Store>,
    /// Snapshot cadence in quanta while a store is attached (0 = none).
    snapshot_every: u64,
    /// First store failure, if any: the durability plane is considered
    /// crashed from that point (no further journaling or snapshots), while
    /// the simulation itself continues unaffected.
    store_error: Option<StoreError>,
    /// Per-quantum PRIL candidate-count distribution, bucketed by
    /// [`CANDIDATE_EDGES`]; flushed as one merged histogram at run end.
    candidate_hist: [u64; 11],
}

impl MemconEngine {
    /// Creates an engine with the default rate oracle
    /// ([`DEFAULT_FAIL_RATE`]).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn new(config: MemconConfig, n_pages: u64) -> Self {
        Self::with_oracle(
            config,
            n_pages,
            Box::new(RateOracle::new(DEFAULT_FAIL_RATE, 0x5EED)),
        )
    }

    /// Creates an engine with an explicit failure oracle.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn with_oracle(config: MemconConfig, n_pages: u64, oracle: Box<dyn FailureOracle>) -> Self {
        config.validate().expect("invalid MEMCON configuration");
        let cost = config.cost_model();
        // Staging: the paper reserves 512 rows/bank on an 8-bank module.
        let staging = 512 * 8;
        let tests = TestEngine::new(
            oracle,
            config.test_mode,
            config.lo_ms,
            config.concurrent_tests,
            staging,
        );
        MemconEngine {
            cost,
            pril: Pril::new(n_pages, config.write_buffer_capacity),
            tests,
            n_pages,
            last_states: Vec::new(),
            generation: vec![0; n_pages as usize],
            lo_anchor: vec![None; n_pages as usize],
            tests_correct: 0,
            tests_mispredicted: 0,
            outcome_buf: Vec::new(),
            fault_plan: None,
            attempts: vec![0; n_pages as usize],
            retry_at: vec![None; n_pages as usize],
            retry_queue: Vec::new(),
            clean_gen: vec![None; n_pages as usize],
            quantum_index: 0,
            recovery: RecoveryStats::default(),
            last_pinned: Vec::new(),
            run: None,
            sample_every: None,
            store: None,
            snapshot_every: 0,
            store_error: None,
            candidate_hist: [0; 11],
            config,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemconConfig {
        &self.config
    }

    /// Sets an explicit fault plan for subsequent runs (takes precedence
    /// over a globally installed plan; `None` falls back to the global
    /// installer). Thread-safe alternative to [`faultinject::install`] for
    /// parallel harnesses: each engine owns its plan and session.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault_plan = plan;
    }

    /// Recovery statistics of the most recent run.
    #[must_use]
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Arms quantum-window time-series sampling: every `Some(n)`-th
    /// quantum boundary takes a [`telemetry`] sample point (counter deltas
    /// plus engine gauges; tick = quantum index). **Single-engine drivers
    /// only** — sampling from engines stepped concurrently would
    /// interleave ring points nondeterministically and break the
    /// `--jobs` byte-identity of the deterministic report section. Fleet
    /// runs sample post-barrier per epoch instead and must leave this
    /// disarmed.
    pub fn set_sample_every(&mut self, every: Option<u64>) {
        self.sample_every = every.filter(|n| *n > 0);
    }

    /// Attaches a durable [`Store`]: subsequent runs journal every MEMCON
    /// state transition to its WAL and publish an engine snapshot every
    /// `snapshot_every` quanta (plus one at [`MemconEngine::begin_run`] and
    /// one at [`MemconEngine::finish_run`]). A crashed run recovers via
    /// [`MemconEngine::recover`].
    ///
    /// Store failures never fail the simulation: the first one is latched
    /// into [`MemconEngine::store_error`] and the durability plane goes
    /// quiet from that point — exactly the on-disk state a crash at that
    /// moment would leave.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unsupported`] when a run is in progress, the cadence
    /// is zero, or the engine's failure oracle cannot persist its state
    /// (e.g. the content oracle's simulated chip).
    pub fn attach_store(&mut self, store: Store, snapshot_every: u64) -> Result<(), StoreError> {
        if self.run.is_some() {
            return Err(StoreError::Unsupported(
                "cannot attach a store while a run is in progress".to_string(),
            ));
        }
        if snapshot_every == 0 {
            return Err(StoreError::Unsupported(
                "snapshot cadence must be at least one quantum".to_string(),
            ));
        }
        if self.tests.persist_oracle().is_none() {
            return Err(StoreError::Unsupported(
                "the failure oracle does not support state persistence".to_string(),
            ));
        }
        self.store = Some(store);
        self.snapshot_every = snapshot_every;
        self.store_error = None;
        Ok(())
    }

    /// The attached store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Detaches and returns the store (flushing is the caller's business).
    pub fn take_store(&mut self) -> Option<Store> {
        self.snapshot_every = 0;
        self.store.take()
    }

    /// The first store failure of the attached store's lifetime, if any.
    /// Once set, journaling and snapshotting stop (the on-disk state is a
    /// faithful crash image); the simulation itself continues.
    #[must_use]
    pub fn store_error(&self) -> Option<&StoreError> {
        self.store_error.as_ref()
    }

    /// Whether a stepped run is currently in progress (also true for a
    /// freshly recovered mid-run engine awaiting resumption).
    #[must_use]
    pub fn mid_run(&self) -> bool {
        self.run.is_some()
    }

    /// Appends `rec` to the attached store's WAL, latching the first
    /// failure into `store_error` (after which journaling goes quiet).
    fn journal(&mut self, rec: &Record) {
        if self.store_error.is_some() {
            return;
        }
        if let Some(store) = self.store.as_mut() {
            if let Err(e) = store.append(rec) {
                self.store_error = Some(e);
            }
        }
    }

    /// Publishes an encoded engine snapshot, with the same failure
    /// latching as [`Self::journal`].
    fn publish_payload(&mut self, payload: &[u8]) {
        if self.store_error.is_some() {
            return;
        }
        if let Some(store) = self.store.as_mut() {
            if let Err(e) = store.publish_snapshot(payload) {
                self.store_error = Some(e);
            }
        }
    }

    /// Encodes current engine state and publishes it as a snapshot (used
    /// outside `advance_until`, where the run state lives in `self`).
    fn snapshot_now(&mut self) {
        if self.store.is_none() || self.store_error.is_some() {
            return;
        }
        let run = self.run.take();
        let payload = self.encode_state(run.as_ref());
        self.run = run;
        self.publish_payload(&payload);
    }

    /// Encodes the complete engine state (including the in-progress run,
    /// when one is passed) into a snapshot payload. The layout is private
    /// to this module and versioned by [`SNAP_VERSION`].
    ///
    /// # Panics
    ///
    /// Panics if the failure oracle cannot persist its state — ruled out
    /// for store-attached engines by [`MemconEngine::attach_store`].
    fn encode_state(&self, run: Option<&RunState>) -> Vec<u8> {
        let mut e = Enc::with_capacity(64 * 1024);
        e.u8(SNAP_VERSION);
        // Configuration: enough to rebuild an identical engine.
        e.f64(self.config.quantum_ms);
        e.f64(self.config.hi_ms);
        e.f64(self.config.lo_ms);
        e.u8(match self.config.test_mode {
            TestMode::ReadAndCompare => 0,
            TestMode::CopyAndCompare => 1,
        });
        e.u32(self.config.concurrent_tests);
        e.u64(self.config.write_buffer_capacity as u64);
        e.bool(self.config.steady_state_start);
        e.u32(self.config.recovery.max_attempts);
        e.u32(self.config.recovery.backoff_cap_quanta);
        e.u64(self.n_pages);
        // Oracle (tag 0 = rate oracle; the only persistable kind today).
        e.u8(0);
        let oracle = self
            .tests
            .persist_oracle()
            // memlint: allow(no-unwrap): attach_store rejects non-persistable oracles, so this is unreachable
            .expect("store attached over a non-persistable oracle");
        e.bytes(&oracle);
        // Engine-plane fault session: the plan plus both replay cursors.
        match self.tests.fault_session() {
            Some(s) => {
                e.bool(true);
                e.str(&s.plan().to_json().emit());
                e.u64_slice(&s.decision_counts());
                e.u64_slice(&s.injected_counts());
            }
            None => e.bool(false),
        }
        self.pril.encode_state(&mut e);
        self.tests.encode_state(&mut e);
        e.u64_slice(&self.generation);
        for a in &self.lo_anchor {
            opt_u64(&mut e, *a);
        }
        for a in &self.attempts {
            e.u64(u64::from(*a));
        }
        for r in &self.retry_at {
            opt_u64(&mut e, *r);
        }
        e.u64_slice(&self.retry_queue);
        for c in &self.clean_gen {
            opt_u64(&mut e, *c);
        }
        e.u64(self.quantum_index);
        e.u64(self.tests_correct);
        e.u64(self.tests_mispredicted);
        let r = &self.recovery;
        e.u64_slice(&r.faults_injected);
        e.u64(r.aborts);
        e.u64(r.retries);
        e.u64(r.backoffs_scheduled);
        e.u64(r.backoff_ceiling_hits);
        e.u64_slice(&r.backoff_hist);
        e.u64(r.backoff_sum_quanta);
        e.u64(r.degraded_rows);
        e.u64(r.ambiguous);
        e.u64(r.ecc_corrected);
        e.u64(r.ecc_uncorrectable);
        e.u64(r.uncorrectable_escapes);
        e.u64_slice(&self.candidate_hist);
        e.u64(self.last_states.len() as u64);
        for s in &self.last_states {
            e.u8(match s {
                PageState::HiRef => 0,
                PageState::Testing => 1,
                PageState::LoRef => 2,
            });
        }
        e.u64(self.last_pinned.len() as u64);
        for p in &self.last_pinned {
            e.bool(*p);
        }
        e.u64(self.snapshot_every);
        match run {
            Some(run) => {
                e.bool(true);
                run.mgr.encode_state(&mut e);
                e.u64(run.event_idx as u64);
                e.u64(run.next_quantum);
                e.u64(run.quantum_ns);
                e.u64(run.mwi_ns);
                e.u64(run.duration);
                e.u64(run.memo_before.hits);
                e.u64(run.memo_before.misses);
            }
            None => e.bool(false),
        }
        e.into_bytes()
    }

    /// Rebuilds an engine from a snapshot payload produced by
    /// [`MemconEngine::encode_state`].
    fn decode_state(payload: &[u8]) -> Result<MemconEngine, String> {
        let mut d = Dec::new(payload);
        let version = d.u8()?;
        if version != SNAP_VERSION {
            return Err(format!(
                "engine snapshot version {version} is not supported (expected {SNAP_VERSION})"
            ));
        }
        let mut config = MemconConfig::paper_default();
        config.quantum_ms = d.f64()?;
        config.hi_ms = d.f64()?;
        config.lo_ms = d.f64()?;
        config.test_mode = match d.u8()? {
            0 => TestMode::ReadAndCompare,
            1 => TestMode::CopyAndCompare,
            t => return Err(format!("unknown test mode tag {t}")),
        };
        config.concurrent_tests = d.u32()?;
        config.write_buffer_capacity = usize::try_from(d.u64()?)
            .map_err(|_| "write buffer capacity exceeds the address space".to_string())?;
        config.steady_state_start = d.bool()?;
        config.recovery.max_attempts = d.u32()?;
        config.recovery.backoff_cap_quanta = d.u32()?;
        config.validate()?;
        let n_pages = d.u64()?;
        let oracle: Box<dyn FailureOracle> = match d.u8()? {
            0 => Box::new(RateOracle::from_persisted(d.bytes()?)?),
            t => return Err(format!("unknown oracle tag {t}")),
        };
        let mut eng = MemconEngine::with_oracle(config, n_pages, oracle);
        if d.bool()? {
            let plan = FaultPlan::parse(&d.str()?)?;
            let plan = Arc::new(plan);
            let decisions = site_counts(d.u64_vec()?, "fault decision counts")?;
            let injected = site_counts(d.u64_vec()?, "fault injected counts")?;
            eng.fault_plan = Some(Arc::clone(&plan));
            eng.tests
                .set_fault_session(Some(FaultSession::restore(plan, decisions, injected)));
        }
        eng.pril.restore_state(&mut d)?;
        eng.tests.restore_state(&mut d)?;
        let pages = n_pages as usize;
        let generation = d.u64_vec()?;
        if generation.len() != pages {
            return Err("generation vector does not match the page count".to_string());
        }
        eng.generation = generation;
        for a in &mut eng.lo_anchor {
            *a = read_opt_u64(&mut d)?;
        }
        for a in &mut eng.attempts {
            *a = u32::try_from(d.u64()?).map_err(|_| "attempt counter exceeds u32".to_string())?;
        }
        for r in &mut eng.retry_at {
            *r = read_opt_u64(&mut d)?;
        }
        eng.retry_queue = d.u64_vec()?;
        for c in &mut eng.clean_gen {
            *c = read_opt_u64(&mut d)?;
        }
        eng.quantum_index = d.u64()?;
        eng.tests_correct = d.u64()?;
        eng.tests_mispredicted = d.u64()?;
        eng.recovery.faults_injected = site_counts(d.u64_vec()?, "injected fault counters")?;
        eng.recovery.aborts = d.u64()?;
        eng.recovery.retries = d.u64()?;
        eng.recovery.backoffs_scheduled = d.u64()?;
        eng.recovery.backoff_ceiling_hits = d.u64()?;
        eng.recovery.backoff_hist = d
            .u64_vec()?
            .try_into()
            .map_err(|_| "backoff histogram bucket count mismatch".to_string())?;
        eng.recovery.backoff_sum_quanta = d.u64()?;
        eng.recovery.degraded_rows = d.u64()?;
        eng.recovery.ambiguous = d.u64()?;
        eng.recovery.ecc_corrected = d.u64()?;
        eng.recovery.ecc_uncorrectable = d.u64()?;
        eng.recovery.uncorrectable_escapes = d.u64()?;
        eng.candidate_hist = d
            .u64_vec()?
            .try_into()
            .map_err(|_| "candidate histogram bucket count mismatch".to_string())?;
        let n_states = d.u64()? as usize;
        let mut last_states = Vec::with_capacity(n_states);
        for _ in 0..n_states {
            last_states.push(match d.u8()? {
                0 => PageState::HiRef,
                1 => PageState::Testing,
                2 => PageState::LoRef,
                t => return Err(format!("unknown page state tag {t}")),
            });
        }
        eng.last_states = last_states;
        let n_pinned = d.u64()? as usize;
        let mut last_pinned = Vec::with_capacity(n_pinned);
        for _ in 0..n_pinned {
            last_pinned.push(d.bool()?);
        }
        eng.last_pinned = last_pinned;
        eng.snapshot_every = d.u64()?;
        if d.bool()? {
            let mut mgr = RefreshManager::new(n_pages, eng.config.hi_ms, eng.config.lo_ms);
            mgr.restore_state(&mut d)?;
            let event_idx = usize::try_from(d.u64()?)
                .map_err(|_| "event cursor exceeds the address space".to_string())?;
            let next_quantum = d.u64()?;
            let quantum_ns = d.u64()?;
            let mwi_ns = d.u64()?;
            let duration = d.u64()?;
            let memo_before = MemoStats {
                hits: d.u64()?,
                misses: d.u64()?,
            };
            eng.run = Some(RunState {
                mgr,
                event_idx,
                next_quantum,
                quantum_ns,
                mwi_ns,
                duration,
                memo_before,
            });
        }
        d.finish("engine snapshot")?;
        Ok(eng)
    }

    /// Recovers an engine from a durable store directory: opens the store
    /// (repairing any torn WAL tail), loads the newest valid snapshot, and
    /// rebuilds the engine exactly as it stood when that snapshot was
    /// published — including an in-progress run, ready to resume.
    ///
    /// Recovery is deterministic snapshot-resume: traces are not
    /// persisted, so the caller must resume the recovered run with the
    /// **same trace** (and the engine carries its fault plan and decision
    /// cursors in the snapshot, so the replayed fault stream continues
    /// bit-identically). A recovered engine journals a
    /// [`Record::RecoveryEvent`] and publishes a fresh snapshot before
    /// returning; time-series sampling stays disarmed.
    ///
    /// `scan_plan` arms fault injection for the recovery scan itself
    /// (`store.short_read`).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when no usable snapshot exists or the
    /// newest valid snapshot does not decode; any [`StoreError`] from
    /// opening the store. Post-recovery journaling failures are latched
    /// into [`MemconEngine::store_error`], not returned.
    pub fn recover(
        dir: &Path,
        mode: DurabilityMode,
        scan_plan: Option<Arc<FaultPlan>>,
    ) -> Result<(MemconEngine, Recovered), StoreError> {
        let (store, recovered) = Store::open(dir, mode, scan_plan)?;
        let snap = recovered.snapshot.as_ref().ok_or_else(|| {
            StoreError::Corrupt("store holds no usable snapshot to recover from".to_string())
        })?;
        let mut engine = Self::decode_state(&snap.payload).map_err(StoreError::Corrupt)?;
        engine.store = Some(store);
        engine.store_error = None;
        engine.journal(&Record::RecoveryEvent {
            replayed_records: recovered.replayed_records,
            truncated_bytes: recovered.truncated_bytes,
        });
        engine.snapshot_now();
        Ok((engine, recovered))
    }

    /// Instantaneous observability snapshot (see [`LiveStats`]). Mid-run
    /// the gauges read the live refresh manager; after a finished run they
    /// read the final state.
    #[must_use]
    pub fn live_stats(&self) -> LiveStats {
        let t = &self.tests.stats;
        let faults_injected = self
            .tests
            .fault_session()
            .map_or(0, FaultSession::total_injected);
        let (pinned_pages, degraded_rows) = match &self.run {
            Some(run) => (run.mgr.pinned_count(), run.mgr.pin_events()),
            None => (
                self.last_pinned.iter().filter(|p| **p).count() as u64,
                self.recovery.degraded_rows,
            ),
        };
        LiveStats {
            faults_injected,
            aborts: t.aborted,
            retries: self.recovery.retries,
            backoffs_scheduled: self.recovery.backoffs_scheduled,
            backoff_ceiling_hits: self.recovery.backoff_ceiling_hits,
            degraded_rows,
            escapes: self.recovery.uncorrectable_escapes,
            pinned_pages,
            pril_buffered: self.pril.buffer_len() as u64,
            pril_capacity: self.config.write_buffer_capacity as u64,
            pages: self.n_pages,
        }
    }

    /// Checks the refresh-correctness invariant over the last run's final
    /// state: every page left at LO-REF must have a clean passing test of
    /// its **current** content generation, and must not be pinned by the
    /// fail-safe degradation rule.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating page.
    pub fn verify_refresh_correctness(&self) -> Result<(), String> {
        for (i, s) in self.last_states.iter().enumerate() {
            if *s != PageState::LoRef {
                continue;
            }
            if self.last_pinned.get(i).copied().unwrap_or(false) {
                return Err(format!("page {i} is pinned yet sits at LO-REF"));
            }
            let current = self.generation[i];
            if self.clean_gen[i] != Some(current) {
                return Err(format!(
                    "page {i} sits at LO-REF at generation {current} without a clean \
                     passing test of that content (last clean: {:?})",
                    self.clean_gen[i]
                ));
            }
        }
        Ok(())
    }

    /// Runs the engine over a complete trace and reports. Equivalent to
    /// [`MemconEngine::begin_run`], one [`MemconEngine::advance_until`] to
    /// the trace horizon, and [`MemconEngine::finish_run`] — stepped and
    /// whole-trace runs share one code path, so they are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the trace pages exceed the engine's page count.
    pub fn run(&mut self, trace: &WriteTrace) -> MemconReport {
        let _span = telemetry::tree_span("memcon.run");
        self.begin_run(trace);
        self.advance_until(trace, trace.duration_ns());
        self.finish_run()
    }

    /// Starts a stepped run: resets all per-run state, arms the fault
    /// session, and performs the steady-state pre-pass. Follow with
    /// [`MemconEngine::advance_until`] calls (monotone limits) and one
    /// [`MemconEngine::finish_run`]. Any previously in-progress stepped run
    /// is discarded, exactly as a fresh [`MemconEngine::run`] would.
    ///
    /// # Panics
    ///
    /// Panics if the trace pages exceed the engine's page count.
    pub fn begin_run(&mut self, trace: &WriteTrace) {
        assert!(
            trace.n_pages() <= self.n_pages,
            "trace has more pages than the engine tracks"
        );
        // Each run starts fresh: clear predictor state, in-flight tests, and
        // per-page bookkeeping left over from any previous trace.
        self.pril = Pril::new(self.n_pages, self.config.write_buffer_capacity);
        self.tests.cancel_all();
        self.tests.stats = TestEngineStats::default();
        self.generation.iter_mut().for_each(|g| *g = 0);
        self.lo_anchor.iter_mut().for_each(|a| *a = None);
        self.tests_correct = 0;
        self.tests_mispredicted = 0;
        self.attempts.iter_mut().for_each(|a| *a = 0);
        self.retry_at.iter_mut().for_each(|r| *r = None);
        self.retry_queue.clear();
        self.clean_gen.iter_mut().for_each(|c| *c = None);
        self.quantum_index = 0;
        self.recovery = RecoveryStats::default();
        self.candidate_hist = [0; 11];
        // A fresh session per run: the decision streams replay, so the same
        // trace and plan reproduce the same faults bit-for-bit.
        let session = self
            .fault_plan
            .as_ref()
            .map(|p| FaultSession::with_plan(Arc::clone(p)))
            .or_else(FaultSession::begin);
        self.tests.set_fault_session(session);
        // Memo counters persist across runs (the memo itself is the point);
        // snapshot them so telemetry reports this run's delta, including the
        // steady-state pre-pass below.
        let memo_before = self.tests.memo_counters().unwrap_or_default();
        let mut mgr = RefreshManager::new(self.n_pages, self.config.hi_ms, self.config.lo_ms);
        if self.config.steady_state_start {
            // The trace window opens on a long-running system: every page
            // holding static content was tested before the window; clean
            // pages already sit at LO-REF (failing ones stay HI-REF). These
            // pre-window tests are not counted in this run's statistics.
            for page in 0..self.n_pages {
                if !self.tests.oracle_mut().page_fails(page, 0) {
                    mgr.transition(page, PageState::LoRef, 0);
                    // No amortization anchor: the test cost was paid before
                    // the window, so it never counts as a misprediction.
                    self.clean_gen[page as usize] = Some(0);
                }
            }
        }
        let quantum_ns = (self.config.quantum_ms * 1e6) as u64;
        let run = RunState {
            mgr,
            event_idx: 0,
            next_quantum: quantum_ns,
            quantum_ns,
            mwi_ns: (self.config.min_write_interval_ms() * 1e6) as u64,
            duration: trace.duration_ns(),
            memo_before,
        };
        if self.store.is_some() {
            // The store draws its own decision stream from the same plan
            // source, so store-plane faults never perturb the engine's
            // deterministic replay stream (and vice versa).
            let store_session = self
                .fault_plan
                .as_ref()
                .map(|p| FaultSession::with_plan(Arc::clone(p)))
                .or_else(FaultSession::begin);
            if let Some(store) = self.store.as_mut() {
                store.set_fault_session(store_session);
            }
            self.journal(&Record::RunBegin {
                n_pages: self.n_pages,
                duration_ns: run.duration,
                quantum_ns: run.quantum_ns,
            });
            // Anchor snapshot: recovery always has a post-pre-pass state to
            // resume from, even before the first cadence boundary.
            let payload = self.encode_state(Some(&run));
            self.publish_payload(&payload);
        }
        self.run = Some(run);
    }

    /// Advances the stepped run through every happening (test completion,
    /// quantum boundary, write event) at or before `limit_ns`, in exact
    /// timeline order. Splitting a run at arbitrary limits cannot reorder
    /// happenings: the loop always picks the globally earliest next one, so
    /// a limit only decides *when* the loop pauses, never *what* it does.
    ///
    /// # Panics
    ///
    /// Panics if no run is in progress (call [`MemconEngine::begin_run`]).
    pub fn advance_until(&mut self, trace: &WriteTrace, limit_ns: u64) {
        let mut run = self
            .run
            .take()
            .expect("advance_until without begin_run in progress");
        let limit = limit_ns.min(run.duration);
        let events = trace.events();
        loop {
            let t_event = events.get(run.event_idx).map(|e| e.time_ns);
            let t_test = self.tests.next_completion_ns();
            let t_quantum = (run.next_quantum <= run.duration).then_some(run.next_quantum);
            // Earliest happening; completions tie-break first so a test that
            // ends exactly when a write arrives completes before the write
            // invalidates it (the write targets the *new* content).
            let next = [t_test, t_quantum, t_event].into_iter().flatten().min();
            let Some(now) = next else { break };
            if now > limit {
                break;
            }

            if t_test == Some(now) {
                self.handle_completions(now, &mut run.mgr, run.duration);
                continue;
            }
            if t_quantum == Some(now) {
                self.handle_quantum(now, &mut run.mgr, run.mwi_ns);
                run.next_quantum += run.quantum_ns;
                if self.store.is_some()
                    && self.snapshot_every > 0
                    && self.quantum_index % self.snapshot_every == 0
                {
                    let payload = self.encode_state(Some(&run));
                    self.publish_payload(&payload);
                }
                continue;
            }
            let e = events[run.event_idx];
            run.event_idx += 1;
            self.handle_write(e.page, e.time_ns, &mut run.mgr, run.mwi_ns);
        }
        self.run = Some(run);
    }

    /// Completes a stepped run: drains horizon completions, finalizes the
    /// refresh timeline, flushes telemetry, and reports. Happenings after
    /// the last `advance_until` limit are **not** processed — step to the
    /// trace horizon first.
    ///
    /// # Panics
    ///
    /// Panics if no run is in progress (call [`MemconEngine::begin_run`]).
    pub fn finish_run(&mut self) -> MemconReport {
        let mut run = self
            .run
            .take()
            .expect("finish_run without begin_run in progress");
        let RunState {
            duration,
            memo_before,
            ..
        } = run;
        let mgr = &mut run.mgr;
        // Drain tests completing exactly at the horizon.
        self.handle_completions(duration, mgr, duration);
        mgr.finalize(duration);
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = mgr.check_invariants() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("RefreshManager invariant violation at finalization: {e}");
            }
        }

        // Censored LO residencies: pages still at LO-REF at the end count as
        // correct — the paper classifies a test as mispredicted only when an
        // early rewrite is actually observed.
        for anchor in &mut self.lo_anchor {
            if anchor.take().is_some() {
                self.tests_correct += 1;
            }
        }

        self.last_states = (0..self.n_pages).map(|p| mgr.state(p)).collect();
        self.last_pinned = (0..self.n_pages).map(|p| mgr.is_pinned(p)).collect();
        let t = self.tests.stats;
        self.recovery.aborts = t.aborted;
        self.recovery.ambiguous = t.ambiguous;
        self.recovery.ecc_corrected = t.ecc_corrected;
        self.recovery.ecc_uncorrectable = t.ecc_uncorrectable;
        self.recovery.degraded_rows = mgr.pin_events();
        if let Some(session) = self.tests.fault_session() {
            self.recovery.faults_injected = session.injected_counts();
        }
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = self.verify_refresh_correctness() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("refresh-correctness violation at end of run: {e}");
            }
        }
        if telemetry::enabled() {
            self.flush_telemetry(&mgr, memo_before);
        }
        if self.store.is_some() {
            self.journal(&Record::RunFinished { at_ns: duration });
            // Terminal snapshot (no run section): a recovery after a clean
            // finish resumes a completed engine, not a mid-run one.
            let payload = self.encode_state(None);
            self.publish_payload(&payload);
            if self.store_error.is_none() {
                if let Some(store) = self.store.as_mut() {
                    if let Err(e) = store.sync() {
                        self.store_error = Some(e);
                    }
                }
            }
        }
        let test_cost = self.cost.test_cost_ns(self.config.test_mode);
        let refresh_ops = mgr.refresh_ops();
        let baseline_ops = mgr.baseline_ops();
        MemconReport {
            refresh_reduction: mgr.reduction(),
            upper_bound: self.cost.upper_bound_reduction(),
            lo_coverage: mgr.lo_coverage(),
            testing_fraction: mgr.testing_fraction(),
            refresh_ops,
            baseline_ops,
            tests_correct: self.tests_correct,
            tests_mispredicted: self.tests_mispredicted,
            refresh_time_ns: refresh_ops * self.cost.refresh_op_ns,
            baseline_refresh_time_ns: baseline_ops * self.cost.refresh_op_ns,
            test_time_correct_ns: self.tests_correct as f64 * test_cost,
            test_time_mispredicted_ns: self.tests_mispredicted as f64 * test_cost,
            duration_ns: duration,
            n_pages: self.n_pages,
        }
    }

    /// Final per-page refresh states of the most recent run (empty before
    /// any run). The reliability guarantee is that every page reported
    /// `LoRef` here passed a content test after its last write.
    #[must_use]
    pub fn final_states(&self) -> &[PageState] {
        &self.last_states
    }

    /// Post-run component statistics.
    #[must_use]
    pub fn internals(&self) -> EngineInternals {
        EngineInternals {
            pril: self.pril.stats,
            tests: self.tests.stats,
            recovery: self.recovery,
        }
    }

    fn handle_write(&mut self, page: PageId, now: u64, mgr: &mut RefreshManager, mwi_ns: u64) {
        self.generation[page as usize] += 1;
        if self.tests.abort(page) {
            // The content under test changed before the verdict: the test
            // can never be amortized.
            self.tests_mispredicted += 1;
            mgr.transition(page, PageState::HiRef, now);
            self.note_failed_attempt(page, now, mgr, false);
        } else {
            match mgr.state(page) {
                PageState::LoRef => {
                    if let Some(start) = self.lo_anchor[page as usize].take() {
                        if now - start >= mwi_ns {
                            self.tests_correct += 1;
                        } else {
                            self.tests_mispredicted += 1;
                        }
                    }
                    mgr.transition(page, PageState::HiRef, now);
                }
                PageState::HiRef => {} // already aggressive; no transition
                PageState::Testing => unreachable!("abort() handles in-test pages"),
            }
        }
        // A write resets PRIL idleness; an armed retry must honor it too
        // (don't re-test immediately): the earliest retry is the boundary
        // after the next — the page's first full idle quantum — exactly
        // when PRIL itself would re-nominate the page.
        if let Some(due) = &mut self.retry_at[page as usize] {
            *due = (*due).max(self.quantum_index + 2);
        }
        if self.store.is_some() {
            let inserted_before = self.pril.stats.inserted;
            self.pril.on_write(page);
            if self.pril.stats.inserted > inserted_before {
                self.journal(&Record::PrilEntered {
                    page,
                    quantum: self.quantum_index,
                });
            }
        } else {
            self.pril.on_write(page);
        }
    }

    /// Records an aborted/ambiguous test attempt on `page` and arms the
    /// abort/retry machinery: pages are re-tested only after a capped
    /// exponential backoff (in quanta), and after [`RecoveryPolicy`]'s
    /// attempt budget — or any uncorrectable ECC error — the page is pinned
    /// to the high-refresh bin until a definitive verdict clears it.
    ///
    /// [`RecoveryPolicy`]: crate::config::RecoveryPolicy
    fn note_failed_attempt(
        &mut self,
        page: PageId,
        now: u64,
        mgr: &mut RefreshManager,
        uncorrectable: bool,
    ) {
        let policy = self.config.recovery;
        let slot = &mut self.attempts[page as usize];
        *slot = slot.saturating_add(1);
        let attempts = *slot;
        if uncorrectable || attempts >= policy.max_attempts {
            if self.store.is_some() && !mgr.is_pinned(page) {
                self.journal(&Record::PinHigh { page, at_ns: now });
            }
            mgr.pin_high(page, now);
        }
        let backoff =
            (1u64 << u64::from((attempts - 1).min(31))).min(u64::from(policy.backoff_cap_quanta));
        self.recovery.backoffs_scheduled += 1;
        if backoff == u64::from(policy.backoff_cap_quanta) {
            self.recovery.backoff_ceiling_hits += 1;
        }
        // Accumulated in engine state (not observed mid-run) so that the
        // telemetry flush at run end is a pure function of the final state —
        // a crashed-and-recovered run reports bit-identically.
        self.recovery.backoff_hist[backoff_bucket(backoff)] += 1;
        self.recovery.backoff_sum_quanta += backoff;
        if self.retry_at[page as usize].is_none() {
            self.retry_queue.push(page);
        }
        self.retry_at[page as usize] = Some(self.quantum_index + backoff);
    }

    /// A definitive (non-ambiguous) verdict resets the attempt counter and
    /// releases any fail-safe pin. Pin release must precede a LO-REF
    /// transition — the refresh manager rejects LO-REF for pinned pages.
    fn clear_attempts(&mut self, page: PageId, mgr: &mut RefreshManager, now: u64) {
        self.attempts[page as usize] = 0;
        self.retry_at[page as usize] = None;
        if self.store.is_some() && mgr.is_pinned(page) {
            self.journal(&Record::PinReleased { page, at_ns: now });
        }
        mgr.release_pin(page);
    }

    /// Folds one run's component statistics into the current telemetry
    /// registry. All values derive from simulation state, so they are
    /// deterministic; called once at the end of [`MemconEngine::run`] rather
    /// than per-event to keep the hot loop telemetry-free.
    fn flush_telemetry(&self, mgr: &RefreshManager, memo_before: crate::testengine::MemoStats) {
        let p = self.pril.stats;
        telemetry::count("memcon.pril.writes", p.writes);
        telemetry::count("memcon.pril.inserted", p.inserted);
        telemetry::count("memcon.pril.evicted_repeat", p.evicted_repeat);
        telemetry::count("memcon.pril.evicted_previous", p.evicted_previous);
        telemetry::count("memcon.pril.overflowed", p.overflowed);
        telemetry::count("memcon.pril.candidates", p.candidates);
        telemetry::count("memcon.pril.quanta", p.quanta);
        // Merged from engine-accumulated buckets rather than observed per
        // quantum, so the registry sees one deterministic flush; emitted
        // only for runs that crossed a boundary, matching the conditional
        // per-event registration this replaces.
        if p.quanta > 0 {
            telemetry::observe_merged(
                "memcon.pril.quantum_candidates",
                &CANDIDATE_EDGES,
                &self.candidate_hist,
                p.quanta,
                p.candidates,
            );
        }
        let t = self.tests.stats;
        telemetry::count("memcon.tests.started", t.started);
        telemetry::count("memcon.tests.completed", t.completed);
        telemetry::count("memcon.tests.failed", t.failed);
        telemetry::count("memcon.tests.aborted", t.aborted);
        telemetry::count("memcon.tests.rejected", t.rejected);
        if let Some(memo) = self.tests.memo_counters() {
            telemetry::count(
                "memcon.oracle.memo_hits",
                memo.hits.saturating_sub(memo_before.hits),
            );
            telemetry::count(
                "memcon.oracle.memo_misses",
                memo.misses.saturating_sub(memo_before.misses),
            );
        }
        telemetry::count("memcon.engine.tests_correct", self.tests_correct);
        telemetry::count("memcon.engine.tests_mispredicted", self.tests_mispredicted);
        let (to_hi, to_testing, to_lo) = mgr.transition_counts();
        telemetry::count("memcon.refresh.to_hi", to_hi);
        telemetry::count("memcon.refresh.to_testing", to_testing);
        telemetry::count("memcon.refresh.to_lo", to_lo);
        let mut finals = [0u64; 3];
        for s in &self.last_states {
            finals[match s {
                PageState::HiRef => 0,
                PageState::Testing => 1,
                PageState::LoRef => 2,
            }] += 1;
        }
        telemetry::count("memcon.refresh.final_hi", finals[0]);
        telemetry::count("memcon.refresh.final_testing", finals[1]);
        telemetry::count("memcon.refresh.final_lo", finals[2]);
        // Fault-injection and recovery counters. Zero-valued fault.* entries
        // are emitted even with no plan installed so the report shape stays
        // stable across chaos and plain runs.
        let r = &self.recovery;
        for site in Site::ALL {
            telemetry::count(
                &format!("fault.{}", site.name()),
                r.faults_injected[site as usize],
            );
        }
        telemetry::count("memcon.recovery.aborts", r.aborts);
        telemetry::count("memcon.recovery.retries", r.retries);
        telemetry::count("memcon.recovery.backoffs_scheduled", r.backoffs_scheduled);
        telemetry::count(
            "memcon.recovery.backoff_ceiling_hits",
            r.backoff_ceiling_hits,
        );
        telemetry::count("memcon.recovery.degraded_rows", r.degraded_rows);
        telemetry::count("memcon.recovery.ambiguous", r.ambiguous);
        telemetry::count("memcon.recovery.ecc_corrected", r.ecc_corrected);
        telemetry::count("memcon.recovery.ecc_uncorrectable", r.ecc_uncorrectable);
        telemetry::count(
            "memcon.recovery.uncorrectable_escapes",
            r.uncorrectable_escapes,
        );
        if r.backoffs_scheduled > 0 {
            telemetry::observe_merged(
                "memcon.recovery.backoff_quanta",
                &BACKOFF_EDGES,
                &r.backoff_hist,
                r.backoffs_scheduled,
                r.backoff_sum_quanta,
            );
        }
    }

    fn handle_quantum(&mut self, now: u64, mgr: &mut RefreshManager, mwi_ns: u64) {
        self.quantum_index += 1;
        // Injected test preemption: model a rogue write landing on whichever
        // page is under test, forcing the abort/retry path.
        if let Some(victim) = self.tests.any_in_flight_page() {
            let fired = self
                .tests
                .fault_session_mut()
                .is_some_and(|s| s.fires(Site::TestPreempt));
            if fired {
                self.handle_write(victim, now, mgr, mwi_ns);
            }
        }
        // Drain the retry queue first: backed-off pages have priority over
        // fresh PRIL candidates for the concurrent-test budget.
        let mut still_armed = Vec::new();
        for page in std::mem::take(&mut self.retry_queue) {
            let Some(due) = self.retry_at[page as usize] else {
                continue; // disarmed by a definitive verdict meanwhile
            };
            if self.quantum_index < due {
                still_armed.push(page);
                continue;
            }
            let generation = self.generation[page as usize];
            if self.tests.try_start(page, generation, now) {
                self.retry_at[page as usize] = None;
                self.recovery.retries += 1;
                mgr.transition(page, PageState::Testing, now);
                if self.store.is_some() {
                    self.journal(&Record::TestStarted {
                        page,
                        quantum: self.quantum_index,
                    });
                    self.journal(&Record::BinChanged {
                        page,
                        state: 1,
                        at_ns: now,
                    });
                }
                if telemetry::enabled() {
                    telemetry::annotate("memcon.test_retry", page);
                }
            } else {
                still_armed.push(page); // no slot free; keep armed
            }
        }
        self.retry_queue = still_armed;
        let candidates = self.pril.end_quantum();
        // Accumulated (not observed) so the run-end flush is a pure
        // function of final engine state — see `flush_telemetry`.
        self.candidate_hist[candidate_bucket(candidates.len() as u64)] += 1;
        if self.store.is_some() {
            for &page in &candidates {
                self.journal(&Record::PrilEvicted {
                    page,
                    quantum: self.quantum_index,
                });
            }
        }
        for page in candidates {
            // A nominated page can be mid-retry-backoff or already under a
            // retry test started above; the retry machinery owns it.
            if self.retry_at[page as usize].is_some() || mgr.state(page) != PageState::HiRef {
                continue;
            }
            let generation = self.generation[page as usize];
            if self.tests.try_start(page, generation, now) {
                mgr.transition(page, PageState::Testing, now);
                if self.store.is_some() {
                    self.journal(&Record::TestStarted {
                        page,
                        quantum: self.quantum_index,
                    });
                    self.journal(&Record::BinChanged {
                        page,
                        state: 1,
                        at_ns: now,
                    });
                }
                if telemetry::enabled() {
                    telemetry::annotate("memcon.test_start", page);
                }
            }
        }
        if self.store.is_some() {
            self.journal(&Record::Progress {
                quantum: self.quantum_index,
                now_ns: now,
            });
        }
        if let Some(every) = self.sample_every {
            if self.quantum_index % every == 0 && telemetry::enabled() {
                self.sample_quantum(mgr);
            }
        }
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(e) = self.pril.check_invariants() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("PRIL invariant violation at quantum boundary ({now} ns): {e}");
            }
            if let Err(e) = mgr.check_invariants() {
                // memlint: allow (deliberate strict-invariants abort)
                panic!("RefreshManager invariant violation at quantum boundary ({now} ns): {e}");
            }
        }
    }

    /// Takes a quantum-window time-series sample (see
    /// [`MemconEngine::set_sample_every`]): engine gauges read from the
    /// live refresh manager, tick = quantum index.
    fn sample_quantum(&self, mgr: &RefreshManager) {
        telemetry::sample_point(
            self.quantum_index,
            &[
                ("memcon.gauge.pinned_pages", mgr.pinned_count()),
                ("memcon.gauge.pril_buffered", self.pril.buffer_len() as u64),
                (
                    "memcon.gauge.pril_capacity",
                    self.config.write_buffer_capacity as u64,
                ),
                ("memcon.gauge.pages", self.n_pages),
            ],
        );
    }

    fn handle_completions(&mut self, now: u64, mgr: &mut RefreshManager, duration: u64) {
        let mut outcomes = std::mem::take(&mut self.outcome_buf);
        self.tests.poll_into(now, &mut outcomes);
        for outcome in &outcomes {
            let end = outcome.end_ns.min(duration);
            let page = outcome.page;
            if self.store.is_some() {
                let verdict = match outcome.verdict {
                    Verdict::Pass => 0u8,
                    Verdict::Fail => 1,
                    Verdict::Ambiguous => 2,
                };
                self.journal(&Record::TestCompleted {
                    page,
                    verdict,
                    end_ns: end,
                });
            }
            match outcome.verdict {
                Verdict::Fail => {
                    self.clear_attempts(page, mgr, end);
                    mgr.transition(page, PageState::HiRef, end);
                    if self.store.is_some() {
                        self.journal(&Record::BinChanged {
                            page,
                            state: 0,
                            at_ns: end,
                        });
                    }
                    // A detected failure is a *correct* engagement of the
                    // mechanism: the test did its protective job.
                    self.tests_correct += 1;
                }
                Verdict::Pass => {
                    self.clear_attempts(page, mgr, end);
                    mgr.transition(page, PageState::LoRef, end);
                    if self.store.is_some() {
                        self.journal(&Record::BinChanged {
                            page,
                            state: 2,
                            at_ns: end,
                        });
                    }
                    self.clean_gen[page as usize] = Some(outcome.generation);
                    self.lo_anchor[page as usize] = Some(outcome.start_ns);
                }
                Verdict::Ambiguous => {
                    // Torn read-back, oracle disagreement, or uncorrectable
                    // ECC: no verdict about the content — the conservative
                    // response is HI-REF plus a backed-off retry.
                    self.tests_mispredicted += 1;
                    mgr.transition(page, PageState::HiRef, end);
                    if self.store.is_some() {
                        self.journal(&Record::BinChanged {
                            page,
                            state: 0,
                            at_ns: end,
                        });
                    }
                    self.note_failed_attempt(
                        page,
                        end,
                        mgr,
                        outcome.ecc == EccEvent::Uncorrectable,
                    );
                }
            }
            if outcome.ecc == EccEvent::Uncorrectable && !mgr.is_pinned(page) {
                self.recovery.uncorrectable_escapes += 1;
            }
        }
        self.outcome_buf = outcomes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::trace::{WriteEvent, WriteTrace};
    use memtrace::workload::WorkloadProfile;

    const MS: u64 = 1_000_000;

    fn ev(t_ms: u64, page: u64) -> WriteEvent {
        WriteEvent {
            time_ns: t_ms * MS,
            page,
        }
    }

    fn cfg() -> MemconConfig {
        MemconConfig::paper_default()
    }

    fn clean_engine(n_pages: u64) -> MemconEngine {
        MemconEngine::with_oracle(cfg(), n_pages, Box::new(RateOracle::new(0.0, 0)))
    }

    #[test]
    fn idle_page_reaches_lo_ref() {
        // One write at t=0, then 20 s of silence: tested after two quanta,
        // LO-REF for the rest.
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        // Test starts at 2048 ms (first boundary after the full idle
        // quantum following the write quantum), completes at 2112 ms.
        // LO time = 20480 - 2112 = 18368 ms of 20480 => ~89.7% coverage.
        assert!(
            (r.lo_coverage - 18_368.0 / 20_480.0).abs() < 1e-6,
            "coverage {}",
            r.lo_coverage
        );
        assert_eq!(r.tests_correct, 1);
        assert_eq!(r.tests_mispredicted, 0);
        assert!(r.refresh_reduction > 0.6);
        assert!(r.refresh_reduction < r.upper_bound);
    }

    #[test]
    fn busy_page_stays_hi_ref() {
        // Writes every 100 ms: never a full idle quantum, never tested.
        let events: Vec<WriteEvent> = (0..200).map(|i| ev(i * 100, 0)).collect();
        let trace = WriteTrace::new(events, 20_000 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(r.lo_coverage, 0.0);
        assert_eq!(e.internals().tests.started, 0);
        assert!(r.refresh_reduction.abs() < 1e-9);
    }

    #[test]
    fn failing_rows_stay_hi_ref() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = MemconEngine::with_oracle(cfg(), 1, Box::new(RateOracle::new(1.0, 0)));
        let r = e.run(&trace);
        assert_eq!(r.lo_coverage, 0.0);
        assert_eq!(e.internals().tests.failed, 1);
        // Testing time (64 ms of 20480) is unrefreshed, so reduction is
        // marginally positive but tiny.
        assert!(r.refresh_reduction < 0.01);
    }

    #[test]
    fn early_rewrite_counts_as_misprediction() {
        // Write at 0; idle through quantum 1; tested at 2048 (ends 2112);
        // rewritten at 2200 ms — far below MinWriteInterval (560 ms) after
        // the test started.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(2200, 0)], 4096 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(r.tests_mispredicted, 1);
        // The rewrite re-qualifies the page: written once in quantum
        // (2048..3072], idle in (3072..4096] => re-tested at 4096 = horizon.
        assert_eq!(r.tests_correct, 0);
    }

    #[test]
    fn write_during_test_aborts_and_counts_mispredicted() {
        // Write at 0; tested at 2048; write at 2080 lands mid-test.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(2080, 0)], 8192 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(e.internals().tests.aborted, 1);
        assert_eq!(r.tests_mispredicted, 1);
        // The abort arms a retry, but the preempting write resets PRIL
        // idleness, so the retry waits for a full idle quantum: re-tested
        // at the 4096 ms boundary, passing at 4160 ms, LO-REF for the
        // remaining 4032 ms of the 8192 ms window.
        let rec = e.recovery_stats();
        assert_eq!(rec.aborts, 1);
        assert_eq!(rec.backoffs_scheduled, 1);
        assert_eq!(rec.backoff_hist[0], 1, "first attempt backs off 1 quantum");
        assert_eq!(rec.retries, 1);
        assert!(
            (r.lo_coverage - 4032.0 / 8192.0).abs() < 1e-9,
            "coverage {}",
            r.lo_coverage
        );
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn late_rewrite_counts_as_correct() {
        // Rewrite 5 s after the test: well past MinWriteInterval.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(7000, 0)], 8192 * MS, 1);
        let mut e = clean_engine(1);
        let r = e.run(&trace);
        assert_eq!(r.tests_correct, 1);
        assert_eq!(r.tests_mispredicted, 0);
    }

    #[test]
    fn concurrent_test_budget_limits_starts() {
        let mut config = cfg();
        config.concurrent_tests = 2;
        // 10 pages all written at t=0 and idle after.
        let events: Vec<WriteEvent> = (0..10).map(|p| ev(0, p)).collect();
        let trace = WriteTrace::new(events, 4096 * MS, 10);
        let mut e = MemconEngine::with_oracle(config, 10, Box::new(RateOracle::new(0.0, 0)));
        let _ = e.run(&trace);
        let t = e.internals().tests;
        assert_eq!(t.started, 2, "only two slots at the 2048 ms boundary");
        assert!(t.rejected >= 8);
    }

    #[test]
    fn quantum_size_matters_for_test_onset() {
        for quantum in [512.0, 1024.0, 2048.0] {
            let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
            let mut e = MemconEngine::with_oracle(
                cfg().with_quantum_ms(quantum),
                1,
                Box::new(RateOracle::new(0.0, 0)),
            );
            let r = e.run(&trace);
            // Earlier quanta => earlier LO-REF => more coverage.
            let expected_lo_ms = 20_480.0 - (2.0 * quantum + 64.0);
            assert!(
                (r.lo_coverage - expected_lo_ms / 20_480.0).abs() < 1e-6,
                "quantum {quantum}: coverage {}",
                r.lo_coverage
            );
        }
    }

    #[test]
    fn real_workload_reduction_in_paper_band() {
        // Paper Fig. 14: reductions of 64.7-74.5% against the 75% bound.
        let trace = WorkloadProfile::netflix().scaled(0.05).generate(3);
        let mut e = MemconEngine::new(cfg(), trace.n_pages());
        let r = e.run(&trace);
        assert!(
            (0.55..0.75).contains(&r.refresh_reduction),
            "reduction {}",
            r.refresh_reduction
        );
        assert!(r.lo_coverage > 0.7, "coverage {}", r.lo_coverage);
        assert!(r.normalized_refresh_and_test_time() < 0.45);
    }

    #[test]
    fn fig18_testing_time_is_negligible() {
        let trace = WorkloadProfile::ac_brotherhood().scaled(0.05).generate(5);
        let mut e = MemconEngine::new(cfg(), trace.n_pages());
        let r = e.run(&trace);
        let test_frac =
            (r.test_time_correct_ns + r.test_time_mispredicted_ns) / r.baseline_refresh_time_ns;
        // Paper: testing is ~0.01% of baseline refresh time. Our simulated
        // pages are rewritten (and hence retested) orders of magnitude more
        // often than the real multi-minute traces' pages to fit the
        // simulation window, so the normalized testing share is inflated;
        // it must still be far below the refresh share (~25-35%).
        assert!(test_frac < 0.05, "testing fraction {test_frac}");
    }

    #[test]
    fn engine_is_reusable_across_runs() {
        // A second run() must start fresh: same trace, same report, even
        // when the first run left a test in flight at the horizon.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(2200, 0)], 4096 * MS, 1);
        let mut e = clean_engine(1);
        let first = e.run(&trace);
        let second = e.run(&trace);
        assert_eq!(first, second);
    }

    #[test]
    fn stepped_run_matches_whole_run() {
        // Slicing a run at awkward, non-quantum-aligned limits must be
        // bit-identical to one whole-trace run — the property the fleet
        // scheduler's epoch batching rests on. Faults armed so the fault
        // decision streams are exercised across slice boundaries too.
        let trace = WorkloadProfile::netflix().scaled(0.02).generate(7);
        let plan = Arc::new(FaultPlan::uniform(0xDEAD_BEEF, 0.05));
        let mut whole = MemconEngine::new(cfg(), trace.n_pages());
        whole.set_fault_plan(Some(Arc::clone(&plan)));
        let r_whole = whole.run(&trace);
        let mut stepped = MemconEngine::new(cfg(), trace.n_pages());
        stepped.set_fault_plan(Some(plan));
        stepped.begin_run(&trace);
        let mut limit = 0u64;
        while limit < trace.duration_ns() {
            limit += 777 * MS; // never aligned with the 1024 ms quantum
            stepped.advance_until(&trace, limit);
        }
        let r_stepped = stepped.finish_run();
        assert_eq!(r_whole, r_stepped);
        assert_eq!(whole.final_states(), stepped.final_states());
        assert_eq!(whole.recovery_stats(), stepped.recovery_stats());
        stepped.verify_refresh_correctness().unwrap();
    }

    #[test]
    #[should_panic(expected = "advance_until without begin_run")]
    fn advance_without_begin_panics() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 100 * MS, 1);
        let mut e = clean_engine(1);
        e.advance_until(&trace, 50 * MS);
    }

    #[test]
    #[should_panic(expected = "more pages than the engine")]
    fn trace_page_bound_checked() {
        let trace = WriteTrace::new(vec![ev(0, 5)], 100 * MS, 6);
        let mut e = clean_engine(2);
        let _ = e.run(&trace);
    }

    use faultinject::{Schedule, SiteSpec};

    fn plan_with(site: Site, spec: SiteSpec) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(0xC0FFEE).with_site(site, spec))
    }

    #[test]
    fn injected_preemptions_drive_abort_retry_and_pinning() {
        // 32 ms quanta with a 64 ms test window: every test spans a quantum
        // boundary, and TestPreempt at rate 1.0 kills it there. Attempts
        // accumulate without a definitive verdict, so the fail-safe pins the
        // page to the high-refresh bin.
        let config = cfg().with_quantum_ms(32.0);
        let trace = WriteTrace::new(vec![ev(0, 0)], 4096 * MS, 1);
        let mut e = MemconEngine::with_oracle(config, 1, Box::new(RateOracle::new(0.0, 0)));
        e.set_fault_plan(Some(plan_with(Site::TestPreempt, SiteSpec::rate(1.0))));
        let r = e.run(&trace);
        let rec = *e.recovery_stats();
        assert!(rec.faults_injected[Site::TestPreempt as usize] > 0);
        assert!(rec.aborts >= 3, "aborts {}", rec.aborts);
        assert!(rec.retries >= 2, "retries {}", rec.retries);
        assert_eq!(rec.degraded_rows, 1, "page pinned exactly once");
        assert_eq!(r.lo_coverage, 0.0, "a never-verified page never drops");
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn torn_reads_back_off_and_eventually_pin() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = clean_engine(1);
        e.set_fault_plan(Some(plan_with(Site::TornRead, SiteSpec::rate(1.0))));
        let r = e.run(&trace);
        let rec = *e.recovery_stats();
        assert!(rec.ambiguous >= 3, "ambiguous {}", rec.ambiguous);
        assert_eq!(rec.degraded_rows, 1);
        assert_eq!(r.lo_coverage, 0.0);
        // Backoff doubles per attempt up to the cap: the histogram must
        // populate multiple buckets.
        assert!(rec.backoff_hist.iter().filter(|&&c| c > 0).count() >= 2);
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn uncorrectable_ecc_pins_immediately_with_zero_escapes() {
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = clean_engine(1);
        e.set_fault_plan(Some(plan_with(Site::EccUncorrectable, SiteSpec::rate(1.0))));
        let _ = e.run(&trace);
        let rec = *e.recovery_stats();
        assert!(rec.ecc_uncorrectable >= 1);
        assert_eq!(rec.degraded_rows, 1, "pinned on the very first attempt");
        assert_eq!(rec.uncorrectable_escapes, 0);
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn clean_retry_releases_the_pin_and_reaches_lo_ref() {
        // The first two read-backs are torn (Burst at indices 0..2); the
        // page pins after the second attempt (max_attempts = 2), then the
        // third, fault-free retry passes, releases the pin, and drops the
        // page to LO-REF.
        let mut config = cfg();
        config.recovery.max_attempts = 2;
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut e = MemconEngine::with_oracle(config, 1, Box::new(RateOracle::new(0.0, 0)));
        e.set_fault_plan(Some(plan_with(
            Site::TornRead,
            SiteSpec {
                rate: 1.0,
                schedule: Schedule::Burst { start: 0, len: 2 },
            },
        )));
        let r = e.run(&trace);
        let rec = *e.recovery_stats();
        assert_eq!(rec.ambiguous, 2);
        assert_eq!(rec.retries, 2);
        assert_eq!(rec.degraded_rows, 1, "pinned once, then released");
        assert_eq!(e.final_states()[0], PageState::LoRef);
        assert!(r.lo_coverage > 0.7, "coverage {}", r.lo_coverage);
        e.verify_refresh_correctness().unwrap();
    }

    #[test]
    fn faulted_runs_are_bit_reproducible() {
        // Two independently constructed engines with the same oracle seed,
        // trace, and plan must agree bit-for-bit — the property the chaos
        // gate's jobs=1 vs jobs=4 byte-comparison rests on. (Re-running the
        // *same* engine is only reproducible for stateless oracles: the
        // rate oracle deliberately draws from one RNG stream.)
        let trace = WorkloadProfile::netflix().scaled(0.02).generate(7);
        let plan = Arc::new(FaultPlan::uniform(0xDEAD_BEEF, 0.05));
        let run = |plan: &Arc<FaultPlan>| {
            let mut e = MemconEngine::new(cfg(), trace.n_pages());
            e.set_fault_plan(Some(Arc::clone(plan)));
            let report = e.run(&trace);
            e.verify_refresh_correctness().unwrap();
            (report, *e.recovery_stats(), e.final_states().to_vec())
        };
        let (r1, rec1, states1) = run(&plan);
        let (r2, rec2, states2) = run(&plan);
        assert_eq!(r1, r2);
        assert_eq!(rec1, rec2);
        assert_eq!(states1, states2);
        assert!(rec1.faults_injected.iter().sum::<u64>() > 0);
    }

    use store::scratch_dir;

    /// Engine-plane-only fault plan: exercises abort/retry/pin machinery
    /// without tearing the store itself (store-plane faults get their own
    /// tests below).
    fn engine_plan(seed: u64) -> Arc<FaultPlan> {
        Arc::new(
            FaultPlan::new(seed)
                .with_site(Site::TestPreempt, SiteSpec::rate(0.05))
                .with_site(Site::TornRead, SiteSpec::rate(0.05))
                .with_site(Site::EccUncorrectable, SiteSpec::rate(0.01)),
        )
    }

    fn reference_run(
        trace: &WriteTrace,
        plan: &Arc<FaultPlan>,
    ) -> (MemconReport, RecoveryStats, Vec<PageState>) {
        let mut e = MemconEngine::new(cfg(), trace.n_pages());
        e.set_fault_plan(Some(Arc::clone(plan)));
        let report = e.run(trace);
        (report, *e.recovery_stats(), e.final_states().to_vec())
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        // The tentpole property: kill a store-backed run mid-flight,
        // recover from disk, resume with the same trace — the final
        // report, recovery stats, and per-page states must be
        // bit-identical to a run that never crashed.
        let trace = WorkloadProfile::netflix().scaled(0.02).generate(7);
        let plan = engine_plan(0xDEAD_BEEF);
        let (r_ref, rec_ref, states_ref) = reference_run(&trace, &plan);

        let dir = scratch_dir("engine-resume");
        {
            let mut e = MemconEngine::new(cfg(), trace.n_pages());
            e.set_fault_plan(Some(Arc::clone(&plan)));
            let store = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            e.attach_store(store, 3).unwrap();
            e.begin_run(&trace);
            e.advance_until(&trace, trace.duration_ns() * 2 / 5);
            assert!(e.store_error().is_none());
            // Crash: the engine drops with the run in progress; only the
            // on-disk image survives.
        }
        let (mut e, rec) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None).unwrap();
        assert!(e.mid_run(), "recovered engine resumes mid-run");
        assert!(rec.snapshot.is_some());
        e.advance_until(&trace, trace.duration_ns());
        let r = e.finish_run();
        assert_eq!(r, r_ref);
        assert_eq!(*e.recovery_stats(), rec_ref);
        assert_eq!(e.final_states(), states_ref.as_slice());
        e.verify_refresh_correctness().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_truncates_a_torn_wal_tail_and_still_resumes() {
        // Cut the newest WAL segment mid-frame (a crash mid-write):
        // recovery must report the truncation, never load the partial
        // record, and the resumed run must still match the reference.
        let trace = WorkloadProfile::netflix().scaled(0.02).generate(11);
        let plan = engine_plan(0xFEED_FACE);
        let (r_ref, rec_ref, states_ref) = reference_run(&trace, &plan);

        let dir = scratch_dir("engine-torn-tail");
        {
            let mut e = MemconEngine::new(cfg(), trace.n_pages());
            e.set_fault_plan(Some(Arc::clone(&plan)));
            let store = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            // A huge cadence pins the anchor snapshot as the recovery
            // point, so the whole partial run sits in one WAL tail
            // segment — guaranteed non-empty for the cut below.
            e.attach_store(store, 10_000).unwrap();
            e.begin_run(&trace);
            e.advance_until(&trace, trace.duration_ns() * 3 / 5 + 777 * MS);
            assert!(e.store_error().is_none());
        }
        let mut wals: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|entry| entry.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "wal"))
            .collect();
        wals.sort();
        let tail = wals
            .pop()
            .expect("a WAL tail segment past the last snapshot");
        let len = std::fs::metadata(&tail).unwrap().len();
        assert!(len > 3, "tail segment holds records");
        let f = std::fs::OpenOptions::new().write(true).open(&tail).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut e, rec) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None).unwrap();
        assert!(rec.truncated_bytes > 0, "the torn tail was truncated");
        e.advance_until(&trace, trace.duration_ns());
        let r = e.finish_run();
        assert_eq!(r, r_ref);
        assert_eq!(*e.recovery_stats(), rec_ref);
        assert_eq!(e.final_states(), states_ref.as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_from_anchor_snapshot_with_empty_wal() {
        // Crash immediately after begin_run: the anchor snapshot is the
        // whole durable state (rotation leaves no WAL tail behind it).
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let mut reference = clean_engine(1);
        let r_ref = reference.run(&trace);

        let dir = scratch_dir("engine-anchor");
        {
            let mut e = clean_engine(1);
            let store = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            e.attach_store(store, 3).unwrap();
            e.begin_run(&trace);
        }
        let (mut e, rec) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None).unwrap();
        assert!(e.mid_run());
        assert_eq!(rec.replayed_records, 0, "no WAL tail survives the anchor");
        e.advance_until(&trace, trace.duration_ns());
        let r = e.finish_run();
        assert_eq!(r, r_ref);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_poisons_the_store_but_never_the_simulation() {
        // An injected torn append latches store_error and silences the
        // durability plane; the simulation must finish unaffected, and the
        // crash image left behind must still recover (with the tear
        // truncated and reported).
        let trace = WriteTrace::new(vec![ev(0, 0), ev(7000, 0)], 20_480 * MS, 1);
        let mut reference = clean_engine(1);
        let r_ref = reference.run(&trace);

        let dir = scratch_dir("engine-torn-write");
        let mut e = clean_engine(1);
        e.set_fault_plan(Some(plan_with(
            Site::StoreTornWrite,
            SiteSpec {
                rate: 1.0,
                schedule: Schedule::OneShot { at: 5 },
            },
        )));
        let store = Store::create(&dir, DurabilityMode::Buffered).unwrap();
        e.attach_store(store, 10_000).unwrap();
        let r = e.run(&trace);
        assert_eq!(r, r_ref, "store faults never perturb the simulation");
        assert_eq!(e.store_error(), Some(&StoreError::TornWrite));

        drop(e);
        let (recovered, rec) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None).unwrap();
        assert!(rec.truncated_bytes > 0, "the half-written frame was cut");
        assert!(
            recovered.mid_run(),
            "image predates the (never-journaled) finish"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latent_corrupt_record_is_caught_at_recovery_never_loaded() {
        // A corrupt-record injection flips a payload bit *after* checksum
        // framing: the append succeeds (corruption is latent), and only
        // the recovery scan's CRC check may catch it — the record must be
        // truncated away, never decoded into engine state.
        let trace = WriteTrace::new(vec![ev(0, 0), ev(7000, 0)], 20_480 * MS, 1);
        let mut reference = clean_engine(1);
        let r_ref = reference.run(&trace);

        let dir = scratch_dir("engine-corrupt-rec");
        {
            let mut e = clean_engine(1);
            e.set_fault_plan(Some(plan_with(
                Site::StoreCorruptRecord,
                SiteSpec {
                    rate: 1.0,
                    schedule: Schedule::OneShot { at: 6 },
                },
            )));
            let store = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            // A huge cadence keeps every journaled record (including the
            // corrupt one) in the anchor snapshot's tail.
            e.attach_store(store, 10_000).unwrap();
            e.begin_run(&trace);
            e.advance_until(&trace, trace.duration_ns());
            assert!(e.store_error().is_none(), "corruption is latent");
        }
        let (mut e, rec) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None).unwrap();
        assert!(
            rec.truncated_bytes > 0,
            "scan stopped at the corrupt record"
        );
        // The corrupt injection fired at append index 6; the anchor
        // snapshot pruned append 0 (RunBegin), so five clean records
        // precede the corrupt one in the surviving tail.
        assert_eq!(rec.replayed_records, 5, "only the clean prefix replays");
        e.advance_until(&trace, trace.duration_ns());
        let r = e.finish_run();
        assert_eq!(r, r_ref);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_with_hi_ref_pins_active_preserves_the_pin() {
        // Crash while the fail-safe has a page pinned: the pin must
        // survive recovery, and the resumed run must match the reference.
        let trace = WriteTrace::new(vec![ev(0, 0)], 20_480 * MS, 1);
        let plan = plan_with(Site::TornRead, SiteSpec::rate(1.0));
        let (r_ref, rec_ref, states_ref) = reference_run(&trace, &plan);
        assert_eq!(rec_ref.degraded_rows, 1, "the reference run pins the page");

        let dir = scratch_dir("engine-pinned");
        {
            let mut e = MemconEngine::new(cfg(), 1);
            e.set_fault_plan(Some(Arc::clone(&plan)));
            let store = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            e.attach_store(store, 2).unwrap();
            e.begin_run(&trace);
            e.advance_until(&trace, 18_000 * MS);
        }
        let (mut e, _) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None).unwrap();
        assert_eq!(
            e.live_stats().pinned_pages,
            1,
            "pin restored from the snapshot"
        );
        e.advance_until(&trace, trace.duration_ns());
        let r = e.finish_run();
        assert_eq!(r, r_ref);
        assert_eq!(*e.recovery_stats(), rec_ref);
        assert_eq!(e.final_states(), states_ref.as_slice());
        e.verify_refresh_correctness().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_ignores_a_stale_duplicate_segment_below_the_bound() {
        // A crash between snapshot publication and segment pruning can
        // leave a stale segment below the snapshot's WAL bound on disk;
        // recovery must drop it, not replay it.
        let trace = WorkloadProfile::netflix().scaled(0.02).generate(3);
        let dir = scratch_dir("engine-stale-seg");
        {
            let mut e = MemconEngine::new(cfg(), trace.n_pages());
            let store = Store::create(&dir, DurabilityMode::Buffered).unwrap();
            e.attach_store(store, 4).unwrap();
            e.begin_run(&trace);
            e.advance_until(&trace, trace.duration_ns() / 2);
        }
        // Forge a stale pre-bound segment: segment 0 predates every
        // snapshot (the anchor snapshot set the bound to at least 1).
        let stale = dir.join("wal-00000000.wal");
        assert!(!stale.exists(), "rotation already pruned segment 0");
        std::fs::write(
            &stale,
            store::wal::frame(&Record::EpochSample { epoch: 99 }.encode()),
        )
        .unwrap();

        let (e, rec) = MemconEngine::recover(&dir, DurabilityMode::Buffered, None).unwrap();
        assert!(rec.stale_segments > 0, "the forged segment was discarded");
        assert!(
            !rec.tail.contains(&Record::EpochSample { epoch: 99 }),
            "stale records never replay"
        );
        assert!(e.mid_run());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[derive(Debug)]
    struct NeverFails;

    impl FailureOracle for NeverFails {
        fn page_fails(&mut self, _page: PageId, _generation: u64) -> bool {
            false
        }
    }

    #[test]
    fn attach_store_rejects_unsupported_configurations() {
        let dir = scratch_dir("engine-attach");
        // Zero snapshot cadence.
        let mut e = clean_engine(1);
        let store = Store::create(&dir, DurabilityMode::InMemory).unwrap();
        assert!(matches!(
            e.attach_store(store, 0),
            Err(StoreError::Unsupported(_))
        ));
        // Mid-run attachment.
        let trace = WriteTrace::new(vec![ev(0, 0)], 100 * MS, 1);
        e.begin_run(&trace);
        let store = Store::create(&dir, DurabilityMode::InMemory).unwrap();
        assert!(matches!(
            e.attach_store(store, 3),
            Err(StoreError::Unsupported(_))
        ));
        // A non-persistable oracle.
        let mut e = MemconEngine::with_oracle(cfg(), 1, Box::new(NeverFails));
        let store = Store::create(&dir, DurabilityMode::InMemory).unwrap();
        assert!(matches!(
            e.attach_store(store, 3),
            Err(StoreError::Unsupported(_))
        ));
    }
}
