//! Row signatures and SEC-DED word ECC for the Copy-and-Compare test mode.
//!
//! In Copy-and-Compare, the in-test row's content is staged in memory and
//! only a compact check value stays in the controller (paper Section 3.3:
//! "only the ECC information is calculated and stored in the memory
//! controller"). Two codes are provided:
//!
//! * [`Crc64`] — a whole-row CRC-64/ECMA-182 signature: detects *that* the
//!   row changed during the test window (any burst of flips),
//! * [`Hamming72`] — per-64-bit-word Hamming SEC-DED: locates and corrects a
//!   single flipped bit per word and detects double flips, which is what a
//!   conventional DIMM ECC would contribute.

/// CRC-64/ECMA-182 (the polynomial used by e.g. XZ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc64 {
    table: [u64; 256],
}

/// The CRC-64/ECMA-182 generator polynomial (normal form).
pub const CRC64_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

impl Crc64 {
    /// Builds the lookup table.
    #[must_use]
    pub fn new() -> Self {
        let mut table = [0u64; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ CRC64_POLY
                } else {
                    crc << 1
                };
            }
            *slot = crc;
        }
        Crc64 { table }
    }

    /// Signature of a row given as 64-bit words.
    #[must_use]
    pub fn row_signature(&self, words: &[u64]) -> u64 {
        let mut crc = u64::MAX;
        for w in words {
            for byte in w.to_le_bytes() {
                let idx = ((crc >> 56) as u8 ^ byte) as usize;
                crc = (crc << 8) ^ self.table[idx];
            }
        }
        !crc
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

/// Outcome of a SEC-DED decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeResult {
    /// Codeword clean; data returned as stored.
    Clean(u64),
    /// Exactly one bit flipped; corrected data returned with the flipped
    /// codeword bit position.
    Corrected {
        /// The corrected data word.
        data: u64,
        /// Flipped bit position within the 72-bit codeword.
        bit: u32,
    },
    /// An uncorrectable (double-bit) error was detected.
    DoubleError,
}

/// Hamming(72, 64) SEC-DED: 64 data bits, 7 Hamming parity bits, 1 overall
/// parity bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming72;

impl Hamming72 {
    /// Number of Hamming parity bits.
    const P: u32 = 7;

    /// Expands 64 data bits into codeword positions: positions that are
    /// powers of two (1, 2, 4, …, 64) hold parity; position 0 holds the
    /// overall parity; data fills the rest of 1..=71.
    fn data_positions() -> impl Iterator<Item = u32> {
        (1u32..72).filter(|p| !p.is_power_of_two())
    }

    /// Encodes a data word into a 72-bit codeword (returned as `u128`).
    #[must_use]
    pub fn encode(&self, data: u64) -> u128 {
        let mut cw: u128 = 0;
        for (i, pos) in Self::data_positions().enumerate() {
            if (data >> i) & 1 == 1 {
                cw |= 1u128 << pos;
            }
        }
        // Hamming parity bits at powers of two.
        for p in 0..Self::P {
            let mask = 1u32 << p;
            let mut parity = 0u32;
            for pos in 1u32..72 {
                if pos & mask != 0 && (cw >> pos) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                cw |= 1u128 << mask;
            }
        }
        // Overall parity at position 0 (makes the whole codeword even).
        if (cw.count_ones() % 2) == 1 {
            cw |= 1;
        }
        cw
    }

    /// Decodes a codeword, correcting a single-bit error and detecting
    /// double-bit errors.
    #[must_use]
    pub fn decode(&self, mut cw: u128) -> DecodeResult {
        let mut syndrome = 0u32;
        for p in 0..Self::P {
            let mask = 1u32 << p;
            let mut parity = 0u32;
            for pos in 1u32..72 {
                if pos & mask != 0 && (cw >> pos) & 1 == 1 {
                    parity ^= 1;
                }
            }
            // Include the parity bit itself (it sits at position `mask`,
            // which has `pos & mask != 0`, so it is already covered).
            syndrome |= parity << p;
        }
        let overall_even = cw.count_ones().is_multiple_of(2);
        let result_bit = match (syndrome, overall_even) {
            (0, true) => None,     // clean
            (0, false) => Some(0), // overall parity bit itself flipped
            (s, false) => Some(s), // single-bit error at position s
            (_, true) => return DecodeResult::DoubleError,
        };
        match result_bit {
            None => DecodeResult::Clean(self.extract(cw)),
            Some(bit) => {
                cw ^= 1u128 << bit;
                DecodeResult::Corrected {
                    data: self.extract(cw),
                    bit,
                }
            }
        }
    }

    fn extract(&self, cw: u128) -> u64 {
        let mut data = 0u64;
        for (i, pos) in Self::data_positions().enumerate() {
            if (cw >> pos) & 1 == 1 {
                data |= 1 << i;
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memutil::rng::{Rng, SeedableRng, SmallRng};

    #[test]
    fn crc_known_value() {
        // CRC-64/ECMA-182 of "123456789" is 0x6C40DF5F0B497347; feed the
        // bytes through a padded word path equivalent: check determinism and
        // sensitivity instead (the row API is word-based).
        let crc = Crc64::new();
        let a = crc.row_signature(&[1, 2, 3]);
        let b = crc.row_signature(&[1, 2, 3]);
        let c = crc.row_signature(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn crc_detects_single_bit_flips_everywhere() {
        let crc = Crc64::new();
        let row = vec![0xDEAD_BEEF_u64; 16];
        let base = crc.row_signature(&row);
        for word in 0..16 {
            for bit in [0u32, 17, 63] {
                let mut flipped = row.clone();
                flipped[word] ^= 1u64 << bit;
                assert_ne!(crc.row_signature(&flipped), base);
            }
        }
    }

    #[test]
    fn crc_order_sensitive() {
        let crc = Crc64::new();
        assert_ne!(crc.row_signature(&[1, 2]), crc.row_signature(&[2, 1]));
    }

    #[test]
    fn hamming_roundtrip_clean() {
        let h = Hamming72;
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_BABE, 1, 1 << 63] {
            let cw = h.encode(data);
            assert_eq!(h.decode(cw), DecodeResult::Clean(data));
        }
    }

    #[test]
    fn hamming_corrects_every_single_bit_flip() {
        let h = Hamming72;
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let cw = h.encode(data);
        for bit in 0..72u32 {
            let corrupted = cw ^ (1u128 << bit);
            match h.decode(corrupted) {
                DecodeResult::Corrected { data: d, bit: b } => {
                    assert_eq!(d, data, "wrong correction for bit {bit}");
                    assert_eq!(b, bit, "located wrong bit");
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn hamming_detects_double_flips() {
        let h = Hamming72;
        let data = 0x0123_4567_89AB_CDEFu64;
        let cw = h.encode(data);
        let mut detected = 0;
        let mut total = 0;
        for a in 0..72u32 {
            for b in (a + 1)..72u32 {
                total += 1;
                let corrupted = cw ^ (1u128 << a) ^ (1u128 << b);
                if h.decode(corrupted) == DecodeResult::DoubleError {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, total, "SEC-DED must flag all double flips");
    }

    #[test]
    fn codeword_uses_72_bits() {
        let cw = Hamming72.encode(u64::MAX);
        assert_eq!(cw >> 72, 0, "codeword must fit in 72 bits");
        assert!(cw.count_ones() >= 64);
    }

    /// Seeded property loop: Hamming(72,64) round-trips every random word.
    #[test]
    fn prop_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0xECC0);
        let h = Hamming72;
        for _ in 0..512 {
            let data: u64 = rng.gen();
            assert_eq!(h.decode(h.encode(data)), DecodeResult::Clean(data));
        }
    }

    /// Seeded property loop: any single flipped codeword bit is corrected
    /// back to the original data word.
    #[test]
    fn prop_single_flip_corrected() {
        let mut rng = SmallRng::seed_from_u64(0xECC1);
        let h = Hamming72;
        for _ in 0..256 {
            let data: u64 = rng.gen();
            let bit = rng.gen_range(0u32..72);
            let corrupted = h.encode(data) ^ (1u128 << bit);
            match h.decode(corrupted) {
                DecodeResult::Corrected { data: d, .. } => assert_eq!(d, data),
                other => panic!("expected correction, got {other:?}"),
            }
        }
    }

    /// Seeded property loop: CRC-64 signatures differ after any single-bit
    /// change of a random row.
    #[test]
    fn prop_crc_differs_on_change() {
        let mut rng = SmallRng::seed_from_u64(0xECC2);
        let crc = Crc64::new();
        for _ in 0..256 {
            let len = rng.gen_range(1usize..8);
            let a: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
            let idx = rng.gen_range(0..len);
            let bit = rng.gen_range(0u32..64);
            let mut b = a.clone();
            b[idx] ^= 1u64 << bit;
            assert_ne!(crc.row_signature(&a), crc.row_signature(&b));
        }
    }
}
