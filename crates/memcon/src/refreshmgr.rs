//! Per-page refresh-state tracking with exact time-in-state integration.
//!
//! Every page is in one of three states:
//!
//! * **HI-REF** — refreshed every `hi_ms` (the default after any write),
//! * **Testing** — deliberately unrefreshed for one test window,
//! * **LO-REF** — refreshed every `lo_ms` (after passing a content test).
//!
//! The manager integrates the time each page spends in each state, from
//! which the refresh-operation count, the reduction over the all-HI-REF
//! baseline (paper Fig. 14), and the LO-REF execution-time coverage
//! (paper Fig. 17) all follow. That accounting is *analytic* (closed-form
//! over time-in-state) and is untouched by the discrete plane below.
//!
//! # Discrete due-page plane (raw-speed wave 2)
//!
//! For tick-driven consumers (streaming ingestion, refresh-energy replay)
//! the manager also keeps a calendar-queue schedule of each page's next
//! refresh instant ([`memutil::calq::CalendarQueue`]): entering HI-REF or
//! LO-REF schedules the page one period out, entering Testing unschedules
//! it (rows under test are deliberately unrefreshed), and
//! [`RefreshManager::pop_due_refreshes`] drains the pages due by `now` in
//! deterministic `(due, page)` order while rescheduling them drift-free at
//! `due + period`. Per-tick cost tracks the number of *due* pages, not the
//! page population — the linear-scan equivalent is retained as
//! `memutil::calq::ScanQueue` and pinned by equivalence tests.

use crate::pril::PageId;
use memutil::calq::CalendarQueue;

/// Refresh state of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Aggressively refreshed (every write lands a page here).
    HiRef,
    /// Under an in-flight content test (unrefreshed by design).
    Testing,
    /// Passed a content test; refreshed at the low rate.
    LoRef,
}

/// Time-in-state accounting for all pages.
#[derive(Debug, Clone)]
pub struct RefreshManager {
    hi_ms: f64,
    lo_ms: f64,
    states: Vec<PageState>,
    since_ns: Vec<u64>,
    /// Fail-safe degradation (recovery policy): pinned pages may not drop
    /// to LO-REF until a clean test completes and releases the pin.
    pinned: Vec<bool>,
    hi_time_ns: f64,
    testing_time_ns: f64,
    lo_time_ns: f64,
    finalized_at_ns: Option<u64>,
    /// Transition counts into each state (HI-REF, Testing, LO-REF), for
    /// telemetry: how often the mechanism moved pages, not just where
    /// they ended up.
    transitions: [u64; 3],
    pins: u64,
    /// Pages currently pinned (kept incrementally so `pinned_count` is O(1)).
    pinned_n: u64,
    /// Discrete next-refresh schedule (see module docs).
    due: CalendarQueue,
    period_hi_ns: u64,
    period_lo_ns: u64,
}

impl RefreshManager {
    /// Creates a manager with every page at HI-REF from time 0.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hi_ms < lo_ms`.
    #[must_use]
    pub fn new(n_pages: u64, hi_ms: f64, lo_ms: f64) -> Self {
        assert!(hi_ms > 0.0 && lo_ms > hi_ms, "need 0 < HI < LO");
        let period_hi_ns = ((hi_ms * 1e6) as u64).max(1);
        let period_lo_ns = ((lo_ms * 1e6) as u64).max(1);
        // Slot width: 1/8 of the HI period keeps per-slot buckets small;
        // enough buckets to span one LO period without revolution churn.
        let slot_ns = (period_hi_ns / 8).max(1);
        let min_buckets = (period_lo_ns / slot_ns + 2) as usize;
        let mut due = CalendarQueue::new(n_pages as usize, slot_ns, min_buckets);
        for page in 0..n_pages {
            due.schedule(page, period_hi_ns); // all pages HI-REF from t=0
        }
        RefreshManager {
            hi_ms,
            lo_ms,
            states: vec![PageState::HiRef; n_pages as usize],
            since_ns: vec![0; n_pages as usize],
            pinned: vec![false; n_pages as usize],
            hi_time_ns: 0.0,
            testing_time_ns: 0.0,
            lo_time_ns: 0.0,
            finalized_at_ns: None,
            transitions: [0; 3],
            pins: 0,
            pinned_n: 0,
            due,
            period_hi_ns,
            period_lo_ns,
        }
    }

    /// Pins `page` to the high-refresh bin at `now_ns` (fail-safe
    /// degradation: the page's test was aborted/ambiguous too often, or its
    /// ECC reported an uncorrectable error). A pinned page may keep being
    /// tested, but cannot transition to LO-REF until [`Self::release_pin`].
    ///
    /// # Panics
    ///
    /// Panics on backwards time or after finalization (see
    /// [`Self::transition`]).
    pub fn pin_high(&mut self, page: PageId, now_ns: u64) {
        if !self.pinned[page as usize] {
            self.pinned[page as usize] = true;
            self.pins += 1;
            self.pinned_n += 1;
        }
        if self.states[page as usize] != PageState::HiRef {
            self.transition(page, PageState::HiRef, now_ns);
        }
    }

    /// Releases the fail-safe pin of `page` (a clean test completed).
    pub fn release_pin(&mut self, page: PageId) {
        if self.pinned[page as usize] {
            self.pinned[page as usize] = false;
            self.pinned_n -= 1;
        }
    }

    /// Whether `page` is pinned to the high-refresh bin.
    #[must_use]
    pub fn is_pinned(&self, page: PageId) -> bool {
        self.pinned[page as usize]
    }

    /// Pages currently pinned (O(1), maintained incrementally).
    #[must_use]
    pub fn pinned_count(&self) -> u64 {
        self.pinned_n
    }

    /// Total pin events since creation.
    #[must_use]
    pub fn pin_events(&self) -> u64 {
        self.pins
    }

    /// Serializes the manager's dynamic state (per-page bins, pins,
    /// time-in-state accumulators, and the discrete due-plane schedule) for
    /// a durability snapshot. Periods derive from `hi_ms`/`lo_ms`, which
    /// travel with the engine's config section.
    pub(crate) fn encode_state(&self, e: &mut memutil::codec::Enc) {
        let tags: Vec<u8> = self
            .states
            .iter()
            .map(|s| match s {
                PageState::HiRef => 0u8,
                PageState::Testing => 1,
                PageState::LoRef => 2,
            })
            .collect();
        e.bytes(&tags);
        e.u64_slice(&self.since_ns);
        let pins: Vec<u8> = self.pinned.iter().map(|&p| u8::from(p)).collect();
        e.bytes(&pins);
        e.f64(self.hi_time_ns);
        e.f64(self.testing_time_ns);
        e.f64(self.lo_time_ns);
        match self.finalized_at_ns {
            Some(t) => {
                e.bool(true);
                e.u64(t);
            }
            None => e.bool(false),
        }
        for t in self.transitions {
            e.u64(t);
        }
        e.u64(self.pins);
        e.u64(self.pinned_n);
        // Due plane: per-page next-refresh instant (absent while Testing).
        for page in 0..self.states.len() as u64 {
            match self.due.due_of(page) {
                Some(t) => {
                    e.bool(true);
                    e.u64(t);
                }
                None => e.bool(false),
            }
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) into
    /// a manager built with the same page count and intervals.
    pub(crate) fn restore_state(&mut self, d: &mut memutil::codec::Dec) -> Result<(), String> {
        let n = self.states.len();
        let tags = d.bytes()?;
        if tags.len() != n {
            return Err(format!(
                "refresh manager: snapshot covers {} pages, configured {n}",
                tags.len()
            ));
        }
        for (state, &tag) in self.states.iter_mut().zip(tags) {
            *state = match tag {
                0 => PageState::HiRef,
                1 => PageState::Testing,
                2 => PageState::LoRef,
                other => return Err(format!("refresh manager: unknown bin tag {other}")),
            };
        }
        let since = d.u64_vec()?;
        if since.len() != n {
            return Err("refresh manager: since-time vector length mismatch".to_string());
        }
        self.since_ns = since;
        let pins = d.bytes()?;
        if pins.len() != n {
            return Err("refresh manager: pin vector length mismatch".to_string());
        }
        for (pinned, &raw) in self.pinned.iter_mut().zip(pins) {
            *pinned = match raw {
                0 => false,
                1 => true,
                other => return Err(format!("refresh manager: invalid pin byte {other}")),
            };
        }
        self.hi_time_ns = d.f64()?;
        self.testing_time_ns = d.f64()?;
        self.lo_time_ns = d.f64()?;
        self.finalized_at_ns = if d.bool()? { Some(d.u64()?) } else { None };
        for t in &mut self.transitions {
            *t = d.u64()?;
        }
        self.pins = d.u64()?;
        self.pinned_n = d.u64()?;
        for page in 0..n as u64 {
            if d.bool()? {
                self.due.schedule(page, d.u64()?);
            } else {
                self.due.unschedule(page);
            }
        }
        Ok(())
    }

    /// Number of pages tracked.
    #[must_use]
    pub fn n_pages(&self) -> u64 {
        self.states.len() as u64
    }

    /// Current state of `page`.
    #[must_use]
    pub fn state(&self, page: PageId) -> PageState {
        self.states[page as usize]
    }

    fn accumulate(&mut self, page: PageId, now_ns: u64) {
        let idx = page as usize;
        let dt = (now_ns - self.since_ns[idx]) as f64;
        match self.states[idx] {
            PageState::HiRef => self.hi_time_ns += dt,
            PageState::Testing => self.testing_time_ns += dt,
            PageState::LoRef => self.lo_time_ns += dt,
        }
        self.since_ns[idx] = now_ns;
    }

    /// Moves `page` to `state` at time `now_ns`, accumulating the time spent
    /// in the previous state.
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards for this page, the manager is
    /// already finalized, or a pinned page is moved to LO-REF (the
    /// fail-safe degradation rule: release the pin first).
    pub fn transition(&mut self, page: PageId, state: PageState, now_ns: u64) {
        assert!(
            self.finalized_at_ns.is_none(),
            "manager is finalized; no more transitions"
        );
        assert!(
            !(state == PageState::LoRef && self.pinned[page as usize]),
            "page {page} is pinned to the high-refresh bin"
        );
        assert!(
            now_ns >= self.since_ns[page as usize],
            "time moved backwards for page {page}"
        );
        self.accumulate(page, now_ns);
        self.states[page as usize] = state;
        let slot = match state {
            PageState::HiRef => 0,
            PageState::Testing => 1,
            PageState::LoRef => 2,
        };
        self.transitions[slot] = self.transitions[slot].saturating_add(1);
        // Discrete plane: entering a refreshed state restarts its period
        // (a write's implicit restore IS a refresh); entering Testing
        // suspends refresh for the window.
        match state {
            PageState::HiRef => self.due.schedule(page, now_ns + self.period_hi_ns),
            PageState::LoRef => self.due.schedule(page, now_ns + self.period_lo_ns),
            PageState::Testing => {
                self.due.unschedule(page);
            }
        }
    }

    /// The page's next scheduled refresh instant (ns), `None` while under
    /// test.
    #[must_use]
    pub fn next_refresh_due(&self, page: PageId) -> Option<u64> {
        self.due.due_of(page)
    }

    /// Drains every page whose refresh is due at or before `now_ns` into
    /// `out`, in ascending `(due, page)` order, and reschedules each
    /// drift-free at `due + period` of its current state. Cost tracks the
    /// number of due pages (plus wheel slots crossed), not the population.
    /// A page that fell several periods behind is emitted once per call
    /// until it catches up.
    ///
    /// # Panics
    ///
    /// Panics if the manager is finalized.
    pub fn pop_due_refreshes(&mut self, now_ns: u64, out: &mut Vec<PageId>) {
        assert!(
            self.finalized_at_ns.is_none(),
            "manager is finalized; no more refreshes"
        );
        let mut entries = Vec::new();
        self.due.pop_due(now_ns, &mut entries);
        for &(due_at, page) in &entries {
            let period = match self.states[page as usize] {
                PageState::HiRef => self.period_hi_ns,
                PageState::LoRef => self.period_lo_ns,
                // Unreachable in practice (Testing unschedules), but a
                // popped entry must be rescheduled somewhere safe.
                PageState::Testing => self.period_hi_ns,
            };
            self.due.schedule(page, due_at + period);
            out.push(page);
        }
    }

    /// Transition counts into (HI-REF, Testing, LO-REF) since creation.
    #[must_use]
    pub fn transition_counts(&self) -> (u64, u64, u64) {
        (
            self.transitions[0],
            self.transitions[1],
            self.transitions[2],
        )
    }

    /// Closes the books at `end_ns`, accumulating every page's final state.
    ///
    /// # Panics
    ///
    /// Panics on double finalization or if `end_ns` precedes a page's last
    /// transition.
    pub fn finalize(&mut self, end_ns: u64) {
        assert!(self.finalized_at_ns.is_none(), "already finalized");
        for page in 0..self.states.len() as u64 {
            assert!(end_ns >= self.since_ns[page as usize]);
            self.accumulate(page, end_ns);
        }
        self.finalized_at_ns = Some(end_ns);
    }

    /// Validates the accounting's internal consistency. Called by
    /// strict-mode harnesses after transitions and at finalization.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    ///
    /// * all three time-in-state accumulators are finite and non-negative,
    /// * time conservation: the integrated page-time equals the sum of every
    ///   page's last-accumulated timestamp (each page's accumulated time is
    ///   exactly its `since` watermark), or `n_pages × end` once finalized.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (name, v) in [
            ("HI-REF", self.hi_time_ns),
            ("Testing", self.testing_time_ns),
            ("LO-REF", self.lo_time_ns),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} accumulator is {v}"));
            }
        }
        let expected: f64 = match self.finalized_at_ns {
            Some(end) => (end as f64) * self.states.len() as f64,
            None => self.since_ns.iter().map(|&s| s as f64).sum(),
        };
        let total = self.total_page_time_ns();
        // f64 accumulation over many pages: allow relative rounding slack.
        let tol = 1e-6 * expected.max(1.0);
        if (total - expected).abs() > tol {
            return Err(format!(
                "time conservation broken: integrated {total} ns, watermarks sum to {expected} ns"
            ));
        }
        let mut pinned_seen = 0u64;
        for page in 0..self.states.len() {
            if self.pinned[page] {
                pinned_seen += 1;
                if self.states[page] == PageState::LoRef {
                    return Err(format!("pinned page {page} sits at LO-REF"));
                }
            }
            // Discrete plane: refreshed states are scheduled, Testing is not.
            let scheduled = self.due.due_of(page as PageId).is_some();
            let testing = self.states[page] == PageState::Testing;
            if scheduled == testing {
                return Err(format!(
                    "page {page} is {:?} but its refresh schedule says {}",
                    self.states[page],
                    if scheduled {
                        "scheduled"
                    } else {
                        "unscheduled"
                    }
                ));
            }
        }
        if pinned_seen != self.pinned_n {
            return Err(format!(
                "pinned counter {} disagrees with sweep {pinned_seen}",
                self.pinned_n
            ));
        }
        Ok(())
    }

    /// Total page-time integrated so far, ns.
    #[must_use]
    pub fn total_page_time_ns(&self) -> f64 {
        self.hi_time_ns + self.testing_time_ns + self.lo_time_ns
    }

    /// Refresh operations performed: HI time at the HI rate plus LO time at
    /// the LO rate (rows under test are deliberately unrefreshed).
    #[must_use]
    pub fn refresh_ops(&self) -> f64 {
        self.hi_time_ns / (self.hi_ms * 1e6) + self.lo_time_ns / (self.lo_ms * 1e6)
    }

    /// Refresh operations the all-HI-REF baseline would perform over the
    /// same page-time.
    #[must_use]
    pub fn baseline_ops(&self) -> f64 {
        self.total_page_time_ns() / (self.hi_ms * 1e6)
    }

    /// Refresh-operation reduction vs the baseline (paper Fig. 14).
    #[must_use]
    pub fn reduction(&self) -> f64 {
        let base = self.baseline_ops();
        if base <= 0.0 {
            0.0
        } else {
            1.0 - self.refresh_ops() / base
        }
    }

    /// Fraction of page-time spent at LO-REF (paper Fig. 17 "coverage").
    #[must_use]
    pub fn lo_coverage(&self) -> f64 {
        let total = self.total_page_time_ns();
        if total <= 0.0 {
            0.0
        } else {
            self.lo_time_ns / total
        }
    }

    /// Fraction of page-time spent under test.
    #[must_use]
    pub fn testing_fraction(&self) -> f64 {
        let total = self.total_page_time_ns();
        if total <= 0.0 {
            0.0
        } else {
            self.testing_time_ns / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn all_hi_gives_zero_reduction() {
        let mut m = RefreshManager::new(4, 16.0, 64.0);
        m.finalize(1000 * MS);
        assert_eq!(m.reduction(), 0.0);
        assert_eq!(m.lo_coverage(), 0.0);
        // 4 pages x 1000 ms / 16 ms = 250 ops.
        assert!((m.refresh_ops() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn all_lo_hits_upper_bound() {
        let mut m = RefreshManager::new(2, 16.0, 64.0);
        m.transition(0, PageState::LoRef, 0);
        m.transition(1, PageState::LoRef, 0);
        m.finalize(6400 * MS);
        assert!((m.reduction() - 0.75).abs() < 1e-9, "got {}", m.reduction());
        assert!((m.lo_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_and_half() {
        let mut m = RefreshManager::new(1, 16.0, 64.0);
        m.transition(0, PageState::LoRef, 0);
        m.transition(0, PageState::HiRef, 500 * MS);
        m.finalize(1000 * MS);
        // 500 ms LO (7.8125 ops) + 500 ms HI (31.25 ops) vs 62.5 baseline.
        assert!((m.lo_coverage() - 0.5).abs() < 1e-9);
        let expected_red = 1.0 - (500.0 / 64.0 + 500.0 / 16.0) / (1000.0 / 16.0);
        assert!((m.reduction() - expected_red).abs() < 1e-9);
    }

    #[test]
    fn testing_time_is_unrefreshed_but_tracked() {
        let mut m = RefreshManager::new(1, 16.0, 64.0);
        m.transition(0, PageState::Testing, 0);
        m.transition(0, PageState::LoRef, 64 * MS);
        m.finalize(128 * MS);
        assert!((m.testing_fraction() - 0.5).abs() < 1e-9);
        // Ops: only the LO period contributes one op worth of time.
        assert!((m.refresh_ops() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn state_queries() {
        let mut m = RefreshManager::new(2, 16.0, 64.0);
        assert_eq!(m.state(0), PageState::HiRef);
        m.transition(0, PageState::Testing, 10 * MS);
        assert_eq!(m.state(0), PageState::Testing);
        assert_eq!(m.state(1), PageState::HiRef);
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn rejects_backwards_time() {
        let mut m = RefreshManager::new(1, 16.0, 64.0);
        m.transition(0, PageState::LoRef, 100);
        m.transition(0, PageState::HiRef, 50);
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn rejects_double_finalize() {
        let mut m = RefreshManager::new(1, 16.0, 64.0);
        m.finalize(100);
        m.finalize(200);
    }

    #[test]
    #[should_panic(expected = "finalized; no more transitions")]
    fn rejects_transition_after_finalize() {
        let mut m = RefreshManager::new(1, 16.0, 64.0);
        m.finalize(100);
        m.transition(0, PageState::LoRef, 200);
    }

    #[test]
    fn invariants_hold_through_transitions_and_finalize() {
        let mut m = RefreshManager::new(3, 16.0, 64.0);
        m.check_invariants().unwrap();
        m.transition(0, PageState::LoRef, 10 * MS);
        m.transition(1, PageState::Testing, 20 * MS);
        m.check_invariants().unwrap();
        m.transition(0, PageState::HiRef, 50 * MS);
        m.check_invariants().unwrap();
        m.finalize(100 * MS);
        m.check_invariants().unwrap();
    }

    #[test]
    fn pin_forces_and_holds_hi_ref() {
        let mut m = RefreshManager::new(2, 16.0, 64.0);
        m.transition(0, PageState::LoRef, 0);
        m.pin_high(0, 10 * MS);
        assert!(m.is_pinned(0));
        assert_eq!(m.state(0), PageState::HiRef);
        assert_eq!(m.pinned_count(), 1);
        assert_eq!(m.pin_events(), 1);
        // Double pin is idempotent.
        m.pin_high(0, 20 * MS);
        assert_eq!(m.pin_events(), 1);
        // A pinned page may still be tested.
        m.transition(0, PageState::Testing, 30 * MS);
        m.check_invariants().unwrap();
        // ... and after a clean test, releasing the pin re-opens LO-REF.
        m.release_pin(0);
        m.transition(0, PageState::LoRef, 40 * MS);
        assert_eq!(m.pinned_count(), 0);
        m.finalize(50 * MS);
        m.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "pinned to the high-refresh bin")]
    fn pinned_page_cannot_enter_lo_ref() {
        let mut m = RefreshManager::new(1, 16.0, 64.0);
        m.pin_high(0, 0);
        m.transition(0, PageState::LoRef, 10 * MS);
    }

    #[test]
    fn empty_manager() {
        let mut m = RefreshManager::new(0, 16.0, 64.0);
        m.finalize(100);
        assert_eq!(m.reduction(), 0.0);
        assert_eq!(m.lo_coverage(), 0.0);
    }

    #[test]
    fn pages_start_due_one_hi_period_out() {
        let mut m = RefreshManager::new(3, 16.0, 64.0);
        assert_eq!(m.next_refresh_due(0), Some(16 * MS));
        let mut due = Vec::new();
        m.pop_due_refreshes(15 * MS, &mut due);
        assert!(due.is_empty());
        m.pop_due_refreshes(16 * MS, &mut due);
        assert_eq!(due, vec![0, 1, 2]);
        // Drift-free reschedule: next instants anchor on the due time.
        assert_eq!(m.next_refresh_due(1), Some(32 * MS));
    }

    #[test]
    fn testing_suspends_and_lo_ref_slows_the_schedule() {
        let mut m = RefreshManager::new(2, 16.0, 64.0);
        m.transition(0, PageState::Testing, 1 * MS);
        assert_eq!(m.next_refresh_due(0), None);
        m.transition(1, PageState::LoRef, 1 * MS);
        assert_eq!(m.next_refresh_due(1), Some(65 * MS));
        m.check_invariants().unwrap();
        let mut due = Vec::new();
        m.pop_due_refreshes(64 * MS, &mut due);
        assert!(
            due.is_empty(),
            "page 0 untested+unscheduled, page 1 not due"
        );
        m.pop_due_refreshes(65 * MS, &mut due);
        assert_eq!(due, vec![1]);
        assert_eq!(m.next_refresh_due(1), Some(129 * MS));
        m.check_invariants().unwrap();
    }

    #[test]
    fn write_like_hi_ref_transition_restarts_the_period() {
        let mut m = RefreshManager::new(1, 16.0, 64.0);
        m.transition(0, PageState::HiRef, 10 * MS); // write → restore
        assert_eq!(m.next_refresh_due(0), Some(26 * MS));
    }

    /// Seeded equivalence property: the calendar-queue due plane matches a
    /// linear-scan mirror driven by the same transition/pop script.
    #[test]
    fn prop_due_plane_matches_scan_reference() {
        use memutil::calq::ScanQueue;
        use memutil::rng::{Rng, SeedableRng, SmallRng};
        for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n_pages = 40u64;
            let (hi, lo) = (16.0f64, 64.0f64);
            let (hi_ns, lo_ns) = (16 * MS, 64 * MS);
            let mut m = RefreshManager::new(n_pages, hi, lo);
            let mut mirror = ScanQueue::new(n_pages as usize);
            let mut states = vec![PageState::HiRef; n_pages as usize];
            for page in 0..n_pages {
                mirror.schedule(page, hi_ns);
            }
            let mut now = 0u64;
            for _ in 0..1500 {
                if rng.gen_range(0u32..4) == 0 {
                    now += rng.gen_range(0u64..40 * MS);
                    let mut got = Vec::new();
                    m.pop_due_refreshes(now, &mut got);
                    let mut entries = Vec::new();
                    mirror.pop_due(now, &mut entries);
                    for &(due_at, page) in &entries {
                        let period = match states[page as usize] {
                            PageState::LoRef => lo_ns,
                            _ => hi_ns,
                        };
                        mirror.schedule(page, due_at + period);
                    }
                    let expect: Vec<u64> = entries.iter().map(|&(_, p)| p).collect();
                    assert_eq!(got, expect, "pop diverged at now={now}");
                } else {
                    let page = rng.gen_range(0u64..n_pages);
                    let state = match rng.gen_range(0u32..3) {
                        0 => PageState::HiRef,
                        1 => PageState::Testing,
                        _ => PageState::LoRef,
                    };
                    m.transition(page, state, now);
                    states[page as usize] = state;
                    match state {
                        PageState::HiRef => mirror.schedule(page, now + hi_ns),
                        PageState::LoRef => mirror.schedule(page, now + lo_ns),
                        PageState::Testing => {
                            mirror.unschedule(page);
                        }
                    }
                }
                let probe = rng.gen_range(0u64..n_pages);
                assert_eq!(m.next_refresh_due(probe), mirror.due_of(probe));
            }
            m.check_invariants().unwrap();
        }
    }
}
