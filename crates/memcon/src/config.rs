//! MEMCON engine configuration.

use crate::cost::{CostModel, TestMode};

/// Recovery policy: how the engine reacts to aborted/ambiguous tests
/// (fault injection, preempting writes, ECC trouble).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Consecutive aborted/ambiguous attempts (without an intervening
    /// clean verdict) after which the page is pinned to the high-refresh
    /// bin until a clean test completes.
    pub max_attempts: u32,
    /// Cap of the exponential retry backoff, in time quanta: attempt `k`
    /// waits `min(2^(k-1), cap)` quanta before re-testing.
    pub backoff_cap_quanta: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff_cap_quanta: 8,
        }
    }
}

/// Configuration of a MEMCON deployment (paper Sections 3–4, Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemconConfig {
    /// PRIL quantum length in ms (paper evaluates 512, 1024, 2048).
    pub quantum_ms: f64,
    /// HI-REF per-row refresh interval in ms (paper: 16).
    pub hi_ms: f64,
    /// LO-REF per-row refresh interval in ms (paper: 64).
    pub lo_ms: f64,
    /// Test mode (buffering strategy).
    pub test_mode: TestMode,
    /// Maximum tests in flight at once (paper Table 3: 256–1024 per 64 ms
    /// window; the engine caps in-flight tests at this value).
    pub concurrent_tests: u32,
    /// PRIL write-buffer capacity in page addresses (paper Section 6.4:
    /// ~4000 entries suffice).
    pub write_buffer_capacity: usize,
    /// Whether the run starts in steady state: the paper's traces begin
    /// *after* the initialization phase of a long-running system, at which
    /// point every page holding static (read-only or not-yet-rewritten)
    /// content has already been tested — clean pages sit at LO-REF from
    /// time 0 (Section 6.1 counts read-only rows as LO-REF). Disable for
    /// cold-boot studies.
    pub steady_state_start: bool,
    /// Abort/retry and fail-safe degradation policy.
    pub recovery: RecoveryPolicy,
}

impl MemconConfig {
    /// The paper's main configuration: 1024 ms quantum, 16/64 ms HI/LO,
    /// Read-and-Compare, 1024 concurrent tests, 4096-entry write buffer.
    #[must_use]
    pub fn paper_default() -> Self {
        MemconConfig {
            quantum_ms: 1024.0,
            hi_ms: 16.0,
            lo_ms: 64.0,
            test_mode: TestMode::ReadAndCompare,
            concurrent_tests: 1024,
            write_buffer_capacity: 4096,
            steady_state_start: true,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// The same configuration starting from a cold boot (every page at
    /// HI-REF until first tested).
    #[must_use]
    pub fn with_cold_start(mut self) -> Self {
        self.steady_state_start = false;
        self
    }

    /// The same configuration with a different PRIL quantum (the CIL knob of
    /// Figs. 14/17).
    #[must_use]
    pub fn with_quantum_ms(mut self, quantum_ms: f64) -> Self {
        self.quantum_ms = quantum_ms;
        self
    }

    /// The same configuration with a different test mode.
    #[must_use]
    pub fn with_test_mode(mut self, mode: TestMode) -> Self {
        self.test_mode = mode;
        self
    }

    /// The cost model induced by this configuration (DDR3-1600, 8 KB rows).
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(
            &dram::timing::TimingParams::ddr3_1600(),
            128,
            self.hi_ms,
            self.lo_ms,
        )
    }

    /// The MinWriteInterval of this configuration, in ms.
    #[must_use]
    pub fn min_write_interval_ms(&self) -> f64 {
        self.cost_model().min_write_interval_ms(self.test_mode)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.quantum_ms < 1.0 || self.quantum_ms.is_nan() {
            // Sub-millisecond quanta are meaningless (writes within 1 ms
            // self-refresh the row) and would truncate to zero nanoseconds.
            return Err("quantum must be at least 1 ms".into());
        }
        if !(self.hi_ms > 0.0 && self.lo_ms > self.hi_ms) {
            return Err("need 0 < HI < LO refresh intervals".into());
        }
        if self.concurrent_tests == 0 {
            return Err("need at least one concurrent test slot".into());
        }
        if self.write_buffer_capacity == 0 {
            return Err("write buffer must have capacity".into());
        }
        if self.recovery.max_attempts == 0 {
            return Err("recovery needs at least one attempt before pinning".into());
        }
        if self.recovery.backoff_cap_quanta == 0 {
            return Err("recovery backoff cap must be at least one quantum".into());
        }
        Ok(())
    }
}

impl Default for MemconConfig {
    fn default() -> Self {
        MemconConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_matches_paper() {
        let c = MemconConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.min_write_interval_ms(), 560.0);
        assert_eq!(
            c.with_test_mode(TestMode::CopyAndCompare)
                .min_write_interval_ms(),
            864.0
        );
    }

    #[test]
    fn builders() {
        let c = MemconConfig::paper_default().with_quantum_ms(512.0);
        assert_eq!(c.quantum_ms, 512.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = MemconConfig::paper_default();
        c.quantum_ms = 0.0;
        assert!(c.validate().is_err());
        let mut c = MemconConfig::paper_default();
        c.lo_ms = 8.0;
        assert!(c.validate().is_err());
        let mut c = MemconConfig::paper_default();
        c.concurrent_tests = 0;
        assert!(c.validate().is_err());
        let mut c = MemconConfig::paper_default();
        c.write_buffer_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = MemconConfig::paper_default();
        c.recovery.max_attempts = 0;
        assert!(c.validate().is_err());
        let mut c = MemconConfig::paper_default();
        c.recovery.backoff_cap_quanta = 0;
        assert!(c.validate().is_err());
    }
}
