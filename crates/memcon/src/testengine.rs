//! Online-test orchestration: slots, staging region, redirection, oracles.
//!
//! A test keeps its row idle for one LO-REF interval, then re-reads and
//! compares. The engine enforces the concurrent-test budget (paper Table 3),
//! and for Copy-and-Compare manages the reserved staging region (512 rows
//! per bank ≈ 1.56 % of a 2 GB module, paper appendix) together with the
//! request-redirection table the memory controller would consult while a
//! row is in test.
//!
//! Whether a row *fails* its test is decided by a [`FailureOracle`]:
//!
//! * [`ContentOracle`] runs the real physics — it regenerates the page's
//!   content in a simulated chip and evaluates the coupling failure model
//!   (used by integration tests and content-level experiments),
//! * [`RateOracle`] draws from a per-workload failing-row rate (the Fig. 4
//!   fractions), which is what trace-scale engine runs use.

use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use memutil::codec::{Dec, Enc};
use memutil::rng::SmallRng;
use memutil::rng::{Rng, SeedableRng};

use dram::address::RowAddr;
use dram::module::DramModule;
use failure_model::content::ContentProfile;
use failure_model::model::CouplingFailureModel;
use faultinject::{FaultSession, Site};

use crate::cost::TestMode;
use crate::ecc::{DecodeResult, Hamming72};
use crate::pril::PageId;

/// Decides whether a page's current content fails at the LO-REF interval.
pub trait FailureOracle: std::fmt::Debug + Send {
    /// Tests `page`'s content (the `generation` counter distinguishes
    /// successive contents of the same page across writes).
    fn page_fails(&mut self, page: PageId, generation: u64) -> bool;

    /// Fault-aware variant: oracles that model the DRAM device itself
    /// ([`ContentOracle`]) consult `faults` for device-level fault sites
    /// (transient bit flips). The default ignores the session.
    fn page_fails_faulted(
        &mut self,
        page: PageId,
        generation: u64,
        faults: &mut FaultSession,
    ) -> bool {
        let _ = faults;
        self.page_fails(page, generation)
    }

    /// Memo hit/miss counters, for oracles that memoize verdicts
    /// ([`ContentOracle`]); `None` for memo-free oracles. Lets the engine
    /// fold oracle efficiency into the telemetry registry without
    /// downcasting.
    fn memo_counters(&self) -> Option<MemoStats> {
        None
    }

    /// Serializes the oracle's mutable state for a durability snapshot, or
    /// `None` when the oracle cannot be persisted (e.g. [`ContentOracle`],
    /// whose simulated-chip state is far too large to journal). Engines
    /// refuse to attach a durable store over a non-persistable oracle.
    fn persist_state(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Bernoulli oracle at a fixed failing-row rate (paper Fig. 4: 0.38–5.6 %
/// of rows fail with program content).
#[derive(Debug)]
pub struct RateOracle {
    rate: f64,
    rng: SmallRng,
}

impl RateOracle {
    /// Creates an oracle failing each test independently with probability
    /// `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is a probability.
    #[must_use]
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        RateOracle {
            rate,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Rebuilds an oracle from a [`persist_state`](FailureOracle::persist_state)
    /// blob captured by a durability snapshot.
    ///
    /// # Errors
    ///
    /// Returns a description when the blob is malformed or encodes an
    /// invalid rate or RNG state.
    pub fn from_persisted(blob: &[u8]) -> Result<Self, String> {
        let mut d = Dec::new(blob);
        let rate = d.f64()?;
        let state_vec = d.u64_vec()?;
        d.finish("rate oracle state")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("rate oracle: rate {rate} outside [0, 1]"));
        }
        let state: [u64; 4] = state_vec
            .try_into()
            .map_err(|_| "rate oracle: rng state must be 4 words".to_string())?;
        let rng = SmallRng::from_state(state)?;
        Ok(RateOracle { rate, rng })
    }
}

impl FailureOracle for RateOracle {
    fn page_fails(&mut self, _page: PageId, _generation: u64) -> bool {
        self.rng.gen::<f64>() < self.rate
    }

    fn persist_state(&self) -> Option<Vec<u8>> {
        let mut e = Enc::with_capacity(48);
        e.f64(self.rate);
        e.u64_slice(&self.rng.state());
        Some(e.into_bytes())
    }
}

/// Hit/miss counters of [`ContentOracle`]'s content-fingerprint memo.
/// Counters saturate at `u64::MAX` rather than wrapping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Verdicts answered from the memo.
    pub hits: u64,
    /// Verdicts that ran the full failure-model evaluation.
    pub misses: u64,
}

/// Physics-backed oracle: regenerates the page's content inside a simulated
/// chip and runs the coupling failure model at the LO-REF interval.
///
/// Verdicts are memoized on a **content fingerprint**: the verdict of a row
/// is a pure function of the chip identity and the content of the victim
/// internal row plus its two vertically adjacent internal rows (the
/// complete input set of the coupling evaluation), so the memo key is
/// `(row id, hash of those three rows)`. Re-testing a page whose
/// neighborhood content is unchanged — the common case, since most pages
/// are written rarely — answers from the memo without re-running the model.
#[derive(Debug)]
pub struct ContentOracle {
    module: DramModule,
    model: CouplingFailureModel,
    profile: ContentProfile,
    lo_ms: f64,
    content_seed: u64,
    memo: HashMap<(u64, u64), bool>,
    memo_stats: MemoStats,
}

impl ContentOracle {
    /// Creates an oracle over `module`, regenerating content from `profile`.
    /// `lo_ms` is the refresh interval tested at (85 °C-equivalent).
    ///
    /// The failure model should be anchored near the tested interval
    /// (`FailureModelParams::calibrated_at(lo_ms)`): with the default 328 ms
    /// anchoring, content-dependent failures cannot occur at 64 ms and the
    /// oracle degenerates to "never fails".
    #[must_use]
    pub fn new(
        module: DramModule,
        model: CouplingFailureModel,
        profile: ContentProfile,
        lo_ms: f64,
        content_seed: u64,
    ) -> Self {
        ContentOracle {
            module,
            model,
            profile,
            lo_ms,
            content_seed,
            memo: HashMap::new(),
            memo_stats: MemoStats::default(),
        }
    }

    /// Memo hit/miss counters.
    #[must_use]
    pub fn memo_stats(&self) -> MemoStats {
        self.memo_stats
    }

    /// Hashes the verdict's input set: the victim internal row and its
    /// vertical neighbors, in internal-row order. `std`'s `DefaultHasher`
    /// is deterministic (SipHash-1-3 with zero keys), so fingerprints are
    /// stable across runs.
    fn fingerprint(&self, addr: RowAddr) -> u64 {
        use std::hash::{Hash, Hasher};
        let g = self.module.geometry();
        let scrambler = self.module.scrambler_for(addr);
        let ir = scrambler.to_internal_row(addr.row);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let neighborhood = [ir.checked_sub(1), Some(ir), ir.checked_add(1)];
        for internal in neighborhood.into_iter().flatten() {
            if internal >= g.rows_per_bank {
                continue;
            }
            let system = RowAddr::new(addr.rank, addr.bank, scrambler.to_system_row(internal));
            self.module
                .read_row(system)
                .expect("internal rows map inside the bank")
                .hash(&mut h);
        }
        h.finish()
    }
}

impl ContentOracle {
    fn verdict(
        &mut self,
        page: PageId,
        generation: u64,
        faults: Option<&mut FaultSession>,
    ) -> bool {
        let g = *self.module.geometry();
        let row_id = page % g.total_rows();
        let addr = RowAddr::from_row_id(row_id, &g);
        let words = g.words_per_row();
        let content =
            self.profile
                .row_content(self.content_seed ^ page, generation as u32, page, words);
        self.module
            .write_row(addr, content)
            .expect("address is in range by construction");
        if let Some(s) = faults {
            // Device-level transient flip, keyed on the content instance so
            // the decision replays regardless of test ordering. The flip
            // lands before the fingerprint below, so the memo key describes
            // the (perturbed) content actually evaluated and stays sound.
            let key = row_id ^ generation.rotate_left(32);
            if s.fires_keyed(Site::DramBitFlip, key) {
                let bit = row_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ generation;
                self.module
                    .inject_bit_flip(addr, bit)
                    .expect("address is in range by construction");
            }
        }
        let key = (row_id, self.fingerprint(addr));
        if let Some(&failed) = self.memo.get(&key) {
            self.memo_stats.hits = self.memo_stats.hits.saturating_add(1);
            return failed;
        }
        let failed = !self
            .model
            .evaluate_system_row(&self.module, addr, self.lo_ms)
            .is_empty();
        self.memo_stats.misses = self.memo_stats.misses.saturating_add(1);
        self.memo.insert(key, failed);
        failed
    }
}

impl FailureOracle for ContentOracle {
    fn page_fails(&mut self, page: PageId, generation: u64) -> bool {
        self.verdict(page, generation, None)
    }

    fn page_fails_faulted(
        &mut self,
        page: PageId,
        generation: u64,
        faults: &mut FaultSession,
    ) -> bool {
        self.verdict(page, generation, Some(faults))
    }

    fn memo_counters(&self) -> Option<MemoStats> {
        Some(self.memo_stats)
    }
}

/// Verdict of a completed test window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The content survived the LO-REF interval: the page may drop to
    /// LO-REF.
    Pass,
    /// The content failed: the page must stay at HI-REF.
    Fail,
    /// No usable verdict — a torn read-back, disagreeing read passes, or an
    /// uncorrectable ECC error. The page must be treated as suspect.
    Ambiguous,
}

/// ECC observation during the read-back of a completed test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EccEvent {
    /// All words decoded clean.
    #[default]
    Clean,
    /// A single-bit error was corrected in flight.
    Corrected,
    /// A double-bit (uncorrectable) error was detected.
    Uncorrectable,
}

/// Outcome of one completed test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestOutcome {
    /// The tested page.
    pub page: PageId,
    /// The verdict.
    pub verdict: Verdict,
    /// ECC observation during the read-back.
    pub ecc: EccEvent,
    /// Content generation the test covered.
    pub generation: u64,
    /// Test start time.
    pub start_ns: u64,
    /// Test end time.
    pub end_ns: u64,
}

impl TestOutcome {
    /// Whether the content failed (page must stay at HI-REF).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.verdict == Verdict::Fail
    }
}

/// Staging-region bookkeeping for Copy-and-Compare.
#[derive(Debug, Clone)]
pub struct StagingRegion {
    capacity: usize,
    /// page → staging slot, consulted by the controller to redirect demand
    /// accesses to in-test rows.
    redirect: HashMap<PageId, usize>,
    free: Vec<usize>,
    /// Highest simultaneous occupancy observed.
    pub peak_used: usize,
}

impl StagingRegion {
    /// A region of `capacity` spare rows (512 per bank × 8 banks by
    /// default in the paper's 2 GB module).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        StagingRegion {
            capacity,
            redirect: HashMap::new(),
            free: (0..capacity).rev().collect(),
            peak_used: 0,
        }
    }

    /// Number of slots in use.
    #[must_use]
    pub fn used(&self) -> usize {
        self.capacity - self.free.len()
    }

    fn acquire(&mut self, page: PageId) -> Option<usize> {
        match self.redirect.entry(page) {
            Entry::Occupied(e) => Some(*e.get()),
            Entry::Vacant(e) => {
                let slot = self.free.pop()?;
                e.insert(slot);
                Some(slot)
            }
        }
    }

    fn release(&mut self, page: PageId) {
        if let Some(slot) = self.redirect.remove(&page) {
            self.free.push(slot);
        }
    }

    /// Where demand accesses to `page` should be redirected while it is in
    /// test, if anywhere.
    #[must_use]
    pub fn redirect_of(&self, page: PageId) -> Option<usize> {
        self.redirect.get(&page).copied()
    }
}

/// Test-engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestEngineStats {
    /// Tests started.
    pub started: u64,
    /// Tests that ran to completion.
    pub completed: u64,
    /// Completed tests whose content failed.
    pub failed: u64,
    /// Tests aborted by a write to the in-test page.
    pub aborted: u64,
    /// Candidates rejected because no test slot (or staging slot) was free.
    pub rejected: u64,
    /// Completed tests with an ambiguous verdict (torn read-back,
    /// disagreeing read passes, or uncorrectable ECC).
    pub ambiguous: u64,
    /// Single-bit ECC corrections observed during read-backs.
    pub ecc_corrected: u64,
    /// Uncorrectable ECC errors observed during read-backs.
    pub ecc_uncorrectable: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    end_ns: u64,
    page: PageId,
    start_ns: u64,
    generation: u64,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: earliest end first out of the max-heap.
        other
            .end_ns
            .cmp(&self.end_ns)
            .then(other.page.cmp(&self.page))
    }
}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The online-test engine.
#[derive(Debug)]
pub struct TestEngine {
    oracle: Box<dyn FailureOracle>,
    mode: TestMode,
    duration_ns: u64,
    slots: u32,
    in_flight: BinaryHeap<InFlight>,
    in_flight_pages: HashMap<PageId, u64>,
    staging: StagingRegion,
    faults: Option<FaultSession>,
    /// Accumulated statistics.
    pub stats: TestEngineStats,
}

impl TestEngine {
    /// Creates a test engine.
    ///
    /// * `duration_ms` — how long a row stays idle under test (one LO-REF
    ///   interval),
    /// * `slots` — the concurrent-test budget,
    /// * `staging_capacity` — Copy-and-Compare spare rows (ignored for
    ///   Read-and-Compare).
    #[must_use]
    pub fn new(
        oracle: Box<dyn FailureOracle>,
        mode: TestMode,
        duration_ms: f64,
        slots: u32,
        staging_capacity: usize,
    ) -> Self {
        TestEngine {
            oracle,
            mode,
            duration_ns: (duration_ms * 1e6) as u64,
            slots,
            in_flight: BinaryHeap::new(),
            in_flight_pages: HashMap::new(),
            staging: StagingRegion::new(staging_capacity),
            faults: None,
            stats: TestEngineStats::default(),
        }
    }

    /// Arms (or disarms) fault injection for subsequent polls. The engine
    /// installs a fresh session per run so decision streams replay.
    pub fn set_fault_session(&mut self, faults: Option<FaultSession>) {
        self.faults = faults;
    }

    /// The active fault session, if any.
    #[must_use]
    pub fn fault_session(&self) -> Option<&FaultSession> {
        self.faults.as_ref()
    }

    /// Mutable access to the active fault session (the engine event loop
    /// draws its own decisions — test preemption — from the same stream).
    pub fn fault_session_mut(&mut self) -> Option<&mut FaultSession> {
        self.faults.as_mut()
    }

    /// Some in-flight page (the smallest id), used as the deterministic
    /// victim of an injected preempting write.
    #[must_use]
    pub fn any_in_flight_page(&self) -> Option<PageId> {
        // `min` over the keys is the same value in any iteration order
        // (see KNOWN_FAILURES.md, order-insensitive allow-marker sites).
        // memlint: allow(map-iter-order): min() is order-insensitive
        self.in_flight_pages.keys().min().copied()
    }

    /// Tests currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight_pages.len()
    }

    /// Whether `page` is currently under test.
    #[must_use]
    pub fn is_testing(&self, page: PageId) -> bool {
        self.in_flight_pages.contains_key(&page)
    }

    /// The staging region (redirection state; Copy-and-Compare only).
    #[must_use]
    pub fn staging(&self) -> &StagingRegion {
        &self.staging
    }

    /// Direct access to the oracle (used by the engine for pre-window
    /// steady-state initialization).
    pub fn oracle_mut(&mut self) -> &mut dyn FailureOracle {
        self.oracle.as_mut()
    }

    /// The oracle's memo counters, if it memoizes
    /// ([`FailureOracle::memo_counters`]).
    #[must_use]
    pub fn memo_counters(&self) -> Option<MemoStats> {
        self.oracle.memo_counters()
    }

    /// The oracle's persisted state, if it supports durability snapshots
    /// ([`FailureOracle::persist_state`]).
    #[must_use]
    pub fn persist_oracle(&self) -> Option<Vec<u8>> {
        self.oracle.persist_state()
    }

    /// Serializes the engine's dynamic state (in-flight tests, staging
    /// occupancy, statistics) for a durability snapshot. The oracle, fault
    /// session, and constructor-derived configuration travel separately.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        // Heap entries in a canonical order; stale (aborted/superseded)
        // entries are included because lazy discard still pops them.
        let mut flights: Vec<InFlight> = self.in_flight.iter().copied().collect();
        flights.sort_unstable_by_key(|f| (f.end_ns, f.page, f.start_ns, f.generation));
        e.u64(flights.len() as u64);
        for f in &flights {
            e.u64(f.end_ns);
            e.u64(f.page);
            e.u64(f.start_ns);
            e.u64(f.generation);
        }
        let mut live: Vec<(PageId, u64)> = self
            // memlint: allow(map-iter-order): sorted below
            .in_flight_pages
            .iter()
            .map(|(&p, &g)| (p, g))
            .collect();
        live.sort_unstable();
        e.u64(live.len() as u64);
        for (p, g) in live {
            e.u64(p);
            e.u64(g);
        }
        // Staging: redirect map sorted by page; the free list travels
        // verbatim because its LIFO order is observable through future
        // slot assignments.
        e.u64(self.staging.capacity as u64);
        let mut redirect: Vec<(PageId, usize)> = self
            .staging
            // memlint: allow(map-iter-order): sorted below
            .redirect
            .iter()
            .map(|(&p, &s)| (p, s))
            .collect();
        redirect.sort_unstable();
        e.u64(redirect.len() as u64);
        // memlint: allow(map-iter-order): iterating the sorted Vec, not the map
        for (p, s) in redirect {
            e.u64(p);
            e.u64(s as u64);
        }
        let free: Vec<u64> = self.staging.free.iter().map(|&s| s as u64).collect();
        e.u64_slice(&free);
        e.u64(self.staging.peak_used as u64);
        e.u64(self.stats.started);
        e.u64(self.stats.completed);
        e.u64(self.stats.failed);
        e.u64(self.stats.aborted);
        e.u64(self.stats.rejected);
        e.u64(self.stats.ambiguous);
        e.u64(self.stats.ecc_corrected);
        e.u64(self.stats.ecc_uncorrectable);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) into
    /// an engine built with the same configuration.
    pub(crate) fn restore_state(&mut self, d: &mut Dec) -> Result<(), String> {
        let n = d.u64()?;
        self.in_flight.clear();
        for _ in 0..n {
            let end_ns = d.u64()?;
            let page = d.u64()?;
            let start_ns = d.u64()?;
            let generation = d.u64()?;
            self.in_flight.push(InFlight {
                end_ns,
                page,
                start_ns,
                generation,
            });
        }
        let n = d.u64()?;
        self.in_flight_pages.clear();
        for _ in 0..n {
            let page = d.u64()?;
            let generation = d.u64()?;
            self.in_flight_pages.insert(page, generation);
        }
        let capacity =
            usize::try_from(d.u64()?).map_err(|_| "test engine: capacity overflow".to_string())?;
        if capacity != self.staging.capacity {
            return Err(format!(
                "test engine: snapshot staging capacity {capacity} does not match configured {}",
                self.staging.capacity
            ));
        }
        let n = d.u64()?;
        self.staging.redirect.clear();
        for _ in 0..n {
            let page = d.u64()?;
            let slot = usize::try_from(d.u64()?)
                .map_err(|_| "test engine: staging slot overflow".to_string())?;
            self.staging.redirect.insert(page, slot);
        }
        self.staging.free = d
            .u64_vec()?
            .into_iter()
            .map(|s| usize::try_from(s).map_err(|_| "test engine: free slot overflow".to_string()))
            .collect::<Result<Vec<usize>, String>>()?;
        self.staging.peak_used = usize::try_from(d.u64()?)
            .map_err(|_| "test engine: peak occupancy overflow".to_string())?;
        self.stats.started = d.u64()?;
        self.stats.completed = d.u64()?;
        self.stats.failed = d.u64()?;
        self.stats.aborted = d.u64()?;
        self.stats.rejected = d.u64()?;
        self.stats.ambiguous = d.u64()?;
        self.stats.ecc_corrected = d.u64()?;
        self.stats.ecc_uncorrectable = d.u64()?;
        Ok(())
    }

    /// Cancels every in-flight test and releases all staging slots (used
    /// when the engine starts a fresh run). Statistics are kept.
    pub fn cancel_all(&mut self) {
        self.in_flight.clear();
        // Release in sorted page order: the staging free list is a LIFO, so
        // hash-order releases would leak into future slot assignments.
        let mut cancelled: Vec<PageId> = std::mem::take(&mut self.in_flight_pages)
            .into_keys()
            .collect();
        cancelled.sort_unstable();
        for page in cancelled {
            self.staging.release(page);
        }
    }

    /// Attempts to start a test of `page` at `now_ns`. `generation` tags the
    /// page's current content. Returns whether the test started.
    pub fn try_start(&mut self, page: PageId, generation: u64, now_ns: u64) -> bool {
        if self.is_testing(page) || self.in_flight_pages.len() >= self.slots as usize {
            self.stats.rejected += 1;
            return false;
        }
        if self.mode == TestMode::CopyAndCompare && self.staging.acquire(page).is_none() {
            self.stats.rejected += 1;
            return false;
        }
        self.staging.peak_used = self.staging.peak_used.max(self.staging.used());
        self.in_flight.push(InFlight {
            end_ns: now_ns + self.duration_ns,
            page,
            start_ns: now_ns,
            generation,
        });
        self.in_flight_pages.insert(page, generation);
        self.stats.started += 1;
        true
    }

    /// Aborts the test of `page` (a demand write changed the content under
    /// test). Returns whether a test was actually in flight.
    pub fn abort(&mut self, page: PageId) -> bool {
        if self.in_flight_pages.remove(&page).is_some() {
            // The heap entry is lazily discarded at pop time.
            self.staging.release(page);
            self.stats.aborted += 1;
            true
        } else {
            false
        }
    }

    /// Pops every test whose idle window has elapsed by `now_ns` and asks
    /// the oracle for its verdict.
    ///
    /// Allocates a fresh `Vec` per call; hot callers should prefer
    /// [`TestEngine::poll_into`] with a reused buffer.
    pub fn poll(&mut self, now_ns: u64) -> Vec<TestOutcome> {
        let mut out = Vec::new();
        self.poll_into(now_ns, &mut out);
        out
    }

    /// [`TestEngine::poll`] into a caller-owned buffer: `out` is cleared,
    /// then filled with the completed tests in end-time order. Lets the
    /// engine's event loop reuse one allocation across polls.
    pub fn poll_into(&mut self, now_ns: u64, out: &mut Vec<TestOutcome>) {
        out.clear();
        while let Some(top) = self.in_flight.peek() {
            if top.end_ns > now_ns {
                break;
            }
            let t = self.in_flight.pop().expect("peeked");
            // Lazily drop aborted (or superseded) entries.
            match self.in_flight_pages.get(&t.page) {
                Some(&gen) if gen == t.generation => {}
                _ => continue,
            }
            self.in_flight_pages.remove(&t.page);
            self.staging.release(t.page);
            let (verdict, ecc) = self.read_back(t.page, t.generation);
            self.stats.completed += 1;
            match verdict {
                Verdict::Fail => self.stats.failed += 1,
                Verdict::Ambiguous => self.stats.ambiguous += 1,
                Verdict::Pass => {}
            }
            out.push(TestOutcome {
                page: t.page,
                verdict,
                ecc,
                generation: t.generation,
                start_ns: t.start_ns,
                end_ns: t.end_ns,
            });
        }
    }

    /// Performs the read-back of a completed test window: fault sites fire
    /// first (a torn read-back or disagreeing read passes yield no verdict,
    /// so the oracle — and its content memo — must not run), then the
    /// oracle decides, then the ECC path of the read-back is exercised.
    fn read_back(&mut self, page: PageId, generation: u64) -> (Verdict, EccEvent) {
        let Some(faults) = self.faults.as_mut() else {
            let verdict = if self.oracle.page_fails(page, generation) {
                Verdict::Fail
            } else {
                Verdict::Pass
            };
            return (verdict, EccEvent::Clean);
        };
        let mut verdict = if faults.fires(Site::TornRead) || faults.fires(Site::OracleDisagree) {
            Verdict::Ambiguous
        } else {
            let mut failed = self.oracle.page_fails_faulted(page, generation, faults);
            if faults.fires(Site::DramVrt) {
                // A variable-retention-time cell changed state between the
                // fill and the read-back: the observed verdict flips.
                failed = !failed;
            }
            if failed {
                Verdict::Fail
            } else {
                Verdict::Pass
            }
        };
        let ecc = if faults.fires(Site::EccUncorrectable) {
            Self::exercise_ecc(page, generation, 2)
        } else if faults.fires(Site::EccCorrectable) {
            Self::exercise_ecc(page, generation, 1)
        } else {
            EccEvent::Clean
        };
        match ecc {
            EccEvent::Corrected => self.stats.ecc_corrected += 1,
            EccEvent::Uncorrectable => {
                // The read-back data cannot be trusted, whatever the oracle
                // said; count the ambiguity once (not already counted when
                // the verdict was decided above).
                self.stats.ecc_uncorrectable += 1;
                if verdict != Verdict::Ambiguous {
                    verdict = Verdict::Ambiguous;
                }
            }
            EccEvent::Clean => {}
        }
        (verdict, ecc)
    }

    /// Runs a word through the real Hamming(72,64) SEC-DED path with
    /// `flips` deterministic bit flips: one flip must decode `Corrected`,
    /// two must decode `DoubleError`.
    fn exercise_ecc(page: PageId, generation: u64, flips: u32) -> EccEvent {
        let h = Hamming72;
        let data = page ^ generation.rotate_left(32) ^ 0xA5A5_5A5A_C3C3_3C3C;
        let mut cw = h.encode(data);
        // Codeword positions are 0..=71; pick distinct ones.
        let b1 = ((page ^ generation) % 72) as u32;
        cw ^= 1u128 << b1;
        if flips >= 2 {
            let b2 = (b1 + 1 + ((page >> 7) % 71) as u32) % 72;
            cw ^= 1u128 << b2;
        }
        match h.decode(cw) {
            DecodeResult::Clean(_) => EccEvent::Clean,
            DecodeResult::Corrected { data: d, .. } => {
                debug_assert_eq!(d, data, "SEC-DED must correct back to the stored word");
                EccEvent::Corrected
            }
            DecodeResult::DoubleError => EccEvent::Uncorrectable,
        }
    }

    /// Earliest pending completion time, if any test is in flight.
    #[must_use]
    pub fn next_completion_ns(&self) -> Option<u64> {
        // The heap may hold stale (aborted) entries; they only make this
        // bound conservative (earlier), which is harmless for scheduling.
        self.in_flight.peek().map(|t| t.end_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn engine(slots: u32) -> TestEngine {
        TestEngine::new(
            Box::new(RateOracle::new(0.0, 0)),
            TestMode::ReadAndCompare,
            64.0,
            slots,
            16,
        )
    }

    #[test]
    fn test_lifecycle_clean() {
        let mut e = engine(4);
        assert!(e.try_start(5, 0, 0));
        assert!(e.is_testing(5));
        assert!(e.poll(63 * MS).is_empty(), "window not elapsed");
        let done = e.poll(64 * MS);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].page, 5);
        assert_eq!(done[0].verdict, Verdict::Pass);
        assert_eq!(done[0].ecc, EccEvent::Clean);
        assert!(!e.is_testing(5));
    }

    #[test]
    fn failing_oracle_reports_failure() {
        let mut e = TestEngine::new(
            Box::new(RateOracle::new(1.0, 0)),
            TestMode::ReadAndCompare,
            64.0,
            4,
            16,
        );
        assert!(e.try_start(1, 0, 0));
        let done = e.poll(64 * MS);
        assert_eq!(done[0].verdict, Verdict::Fail);
        assert_eq!(e.stats.failed, 1);
    }

    #[test]
    fn slot_budget_enforced() {
        let mut e = engine(2);
        assert!(e.try_start(1, 0, 0));
        assert!(e.try_start(2, 0, 0));
        assert!(!e.try_start(3, 0, 0));
        assert_eq!(e.stats.rejected, 1);
        // After completion, slots free up.
        let _ = e.poll(64 * MS);
        assert!(e.try_start(3, 0, 64 * MS));
    }

    #[test]
    fn duplicate_page_rejected() {
        let mut e = engine(4);
        assert!(e.try_start(1, 0, 0));
        assert!(!e.try_start(1, 0, 1));
    }

    #[test]
    fn abort_cancels_test() {
        let mut e = engine(4);
        assert!(e.try_start(7, 0, 0));
        assert!(e.abort(7));
        assert!(!e.abort(7), "double abort is a no-op");
        assert!(e.poll(64 * MS).is_empty(), "aborted test must not complete");
        assert_eq!(e.stats.aborted, 1);
        assert_eq!(e.stats.completed, 0);
    }

    #[test]
    fn aborted_page_can_restart_with_new_generation() {
        let mut e = engine(4);
        assert!(e.try_start(7, 0, 0));
        assert!(e.abort(7));
        assert!(e.try_start(7, 1, 10 * MS));
        let done = e.poll(100 * MS);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].start_ns, 10 * MS);
    }

    #[test]
    fn copy_mode_uses_staging_and_redirects() {
        let mut e = TestEngine::new(
            Box::new(RateOracle::new(0.0, 0)),
            TestMode::CopyAndCompare,
            64.0,
            8,
            2,
        );
        assert!(e.try_start(1, 0, 0));
        assert!(e.try_start(2, 0, 0));
        assert!(e.staging().redirect_of(1).is_some());
        assert_ne!(e.staging().redirect_of(1), e.staging().redirect_of(2));
        // Staging exhausted even though slots remain.
        assert!(!e.try_start(3, 0, 0));
        let _ = e.poll(64 * MS);
        assert_eq!(e.staging().used(), 0);
        assert!(e.staging().redirect_of(1).is_none());
        assert_eq!(e.staging().peak_used, 2);
    }

    #[test]
    fn read_mode_ignores_staging_capacity() {
        let mut e = TestEngine::new(
            Box::new(RateOracle::new(0.0, 0)),
            TestMode::ReadAndCompare,
            64.0,
            8,
            0, // no staging at all
        );
        assert!(e.try_start(1, 0, 0));
    }

    #[test]
    fn completions_in_time_order() {
        let mut e = engine(8);
        assert!(e.try_start(1, 0, 10 * MS));
        assert!(e.try_start(2, 0, 0));
        let done = e.poll(200 * MS);
        assert_eq!(done.len(), 2);
        assert!(done[0].end_ns <= done[1].end_ns);
        assert_eq!(done[0].page, 2);
    }

    #[test]
    fn next_completion_bound() {
        let mut e = engine(8);
        assert_eq!(e.next_completion_ns(), None);
        assert!(e.try_start(1, 0, 5 * MS));
        assert_eq!(e.next_completion_ns(), Some(69 * MS));
    }

    #[test]
    fn rate_oracle_respects_rate() {
        let mut o = RateOracle::new(0.3, 42);
        let n = 20_000;
        let fails = (0..n).filter(|&i| o.page_fails(i, 0)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn poll_into_matches_poll_and_reuses_buffer() {
        let setup = || {
            let mut e = engine(8);
            assert!(e.try_start(1, 0, 10 * MS));
            assert!(e.try_start(2, 0, 0));
            assert!(e.try_start(3, 0, 5 * MS));
            e
        };
        let mut a = setup();
        let mut b = setup();
        let mut buf = vec![TestOutcome {
            page: 99,
            verdict: Verdict::Fail,
            ecc: EccEvent::Clean,
            generation: 0,
            start_ns: 0,
            end_ns: 0,
        }];
        b.poll_into(200 * MS, &mut buf);
        assert_eq!(a.poll(200 * MS), buf, "poll_into must match poll");
        assert_eq!(a.stats, b.stats);
        b.poll_into(300 * MS, &mut buf);
        assert!(buf.is_empty(), "poll_into must clear stale outcomes");
    }

    #[test]
    fn content_oracle_is_content_sensitive() {
        use dram::geometry::DramGeometry;
        use dram::timing::TimingParams;
        use failure_model::params::FailureModelParams;

        let g = DramGeometry {
            ranks: 1,
            chips_per_rank: 1,
            banks: 2,
            rows_per_bank: 256,
            row_bytes: 2048,
            block_bytes: 64,
            density: dram::geometry::ChipDensity::Gb8,
        };
        let module = DramModule::new(g, TimingParams::ddr3_1600(), 99);
        // Anchor the failure model at the tested interval so content-driven
        // failures can actually occur at 64 ms.
        let model = CouplingFailureModel::new(FailureModelParams::calibrated_at(64.0));
        let mut random = ContentOracle::new(
            module.clone(),
            model.clone(),
            ContentProfile::random_data(),
            64.0,
            7,
        );
        let mut zero = ContentOracle::new(module, model, ContentProfile::zeroes(), 64.0, 7);
        let n = 512u64;
        let rand_fails = (0..n).filter(|&p| random.page_fails(p, 0)).count();
        let zero_fails = (0..n).filter(|&p| zero.page_fails(p, 0)).count();
        assert!(
            rand_fails > zero_fails,
            "random content ({rand_fails}) should fail more than zeros ({zero_fails})"
        );
    }

    fn content_oracle(seed: u64) -> ContentOracle {
        use dram::geometry::DramGeometry;
        use dram::timing::TimingParams;
        use failure_model::params::FailureModelParams;

        let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), seed);
        let model = CouplingFailureModel::new(FailureModelParams::calibrated_at(64.0));
        ContentOracle::new(module, model, ContentProfile::random_data(), 64.0, 7)
    }

    #[test]
    fn content_memo_hits_on_unchanged_neighborhood() {
        let mut o = content_oracle(11);
        let first = o.page_fails(5, 0);
        // Same page, same generation: identical content is rewritten and no
        // neighbor changed, so the verdict comes from the memo.
        let second = o.page_fails(5, 0);
        assert_eq!(first, second);
        assert_eq!(o.memo_stats(), MemoStats { hits: 1, misses: 1 });
        // A new generation regenerates different random content: miss.
        let _ = o.page_fails(5, 1);
        assert_eq!(o.memo_stats().misses, 2);
    }

    #[test]
    fn content_memo_preserves_verdicts() {
        // Every memoized verdict must equal a direct (memo-free) model
        // evaluation of the same module state; the memo may only change
        // *when* the model runs, never the answer.
        use dram::geometry::DramGeometry;
        use dram::timing::TimingParams;
        use failure_model::params::FailureModelParams;

        let module = DramModule::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), 23);
        let model = CouplingFailureModel::new(FailureModelParams::calibrated_at(64.0));
        let mut oracle = ContentOracle::new(
            module.clone(),
            model.clone(),
            ContentProfile::random_data(),
            64.0,
            7,
        );
        let profile = ContentProfile::random_data();
        let mut reference = module;
        let g = *reference.geometry();
        let words = g.words_per_row();
        for round in 0..3u64 {
            for page in 0..64u64 {
                let generation = round % 2;
                let verdict = oracle.page_fails(page, generation);
                let addr = RowAddr::from_row_id(page % g.total_rows(), &g);
                let content = profile.row_content(7 ^ page, generation as u32, page, words);
                reference.write_row(addr, content).expect("in range");
                let expected = !model.evaluate_system_row(&reference, addr, 64.0).is_empty();
                assert_eq!(verdict, expected, "diverged at page {page} round {round}");
            }
        }
        assert!(
            oracle.memo_stats().hits > 0,
            "repeated neighborhoods should hit: {:?}",
            oracle.memo_stats()
        );
    }

    #[test]
    fn aborted_test_never_populates_the_memo() {
        // Regression: an aborted test must not leave a partial verdict in
        // the content-fingerprint memo — the next test of the same content
        // must be a memo miss, not a hit on a phantom entry.
        let mut e = TestEngine::new(
            Box::new(content_oracle(31)),
            TestMode::ReadAndCompare,
            64.0,
            4,
            16,
        );
        assert!(e.try_start(3, 0, 0));
        assert!(e.abort(3));
        assert!(e.poll(100 * MS).is_empty());
        assert_eq!(
            e.memo_counters(),
            Some(MemoStats::default()),
            "aborted test must not touch the memo"
        );
        assert!(e.try_start(3, 0, 200 * MS));
        let done = e.poll(300 * MS);
        assert_eq!(done.len(), 1);
        assert_eq!(
            e.memo_counters(),
            Some(MemoStats { hits: 0, misses: 1 }),
            "first completed test must miss the memo"
        );
    }

    fn faulted_engine(oracle: Box<dyn FailureOracle>, site: Site) -> TestEngine {
        use faultinject::{FaultPlan, SiteSpec};
        let mut e = TestEngine::new(oracle, TestMode::ReadAndCompare, 64.0, 8, 16);
        let plan = FaultPlan::new(0xFA17).with_site(site, SiteSpec::rate(1.0));
        e.set_fault_session(Some(FaultSession::with_plan(std::sync::Arc::new(plan))));
        e
    }

    #[test]
    fn torn_read_is_ambiguous_and_skips_oracle_and_memo() {
        let mut e = faulted_engine(Box::new(content_oracle(33)), Site::TornRead);
        assert!(e.try_start(1, 0, 0));
        let done = e.poll(64 * MS);
        assert_eq!(done[0].verdict, Verdict::Ambiguous);
        assert_eq!(e.stats.ambiguous, 1);
        assert_eq!(
            e.memo_counters(),
            Some(MemoStats::default()),
            "ambiguous read-back must not run the oracle"
        );
    }

    #[test]
    fn oracle_disagreement_is_ambiguous() {
        let mut e = faulted_engine(Box::new(RateOracle::new(0.0, 0)), Site::OracleDisagree);
        assert!(e.try_start(9, 2, 0));
        let done = e.poll(64 * MS);
        assert_eq!(done[0].verdict, Verdict::Ambiguous);
        assert_eq!(done[0].generation, 2);
    }

    #[test]
    fn vrt_toggles_the_observed_verdict() {
        let mut e = faulted_engine(Box::new(RateOracle::new(0.0, 0)), Site::DramVrt);
        assert!(e.try_start(4, 0, 0));
        let done = e.poll(64 * MS);
        assert_eq!(
            done[0].verdict,
            Verdict::Fail,
            "a VRT flip-flop turns a clean verdict into an observed failure"
        );
    }

    #[test]
    fn ecc_sites_exercise_the_real_secded_path() {
        let mut e = faulted_engine(Box::new(RateOracle::new(0.0, 0)), Site::EccCorrectable);
        assert!(e.try_start(1, 0, 0));
        let done = e.poll(64 * MS);
        assert_eq!(done[0].ecc, EccEvent::Corrected);
        assert_eq!(
            done[0].verdict,
            Verdict::Pass,
            "corrected errors keep the verdict"
        );
        assert_eq!(e.stats.ecc_corrected, 1);

        let mut e = faulted_engine(Box::new(RateOracle::new(0.0, 0)), Site::EccUncorrectable);
        assert!(e.try_start(2, 5, 0));
        let done = e.poll(64 * MS);
        assert_eq!(done[0].ecc, EccEvent::Uncorrectable);
        assert_eq!(
            done[0].verdict,
            Verdict::Ambiguous,
            "uncorrectable read-backs cannot yield a verdict"
        );
        assert_eq!(e.stats.ecc_uncorrectable, 1);
        assert_eq!(e.stats.ambiguous, 1);
    }

    #[test]
    fn dram_bit_flip_perturbs_the_content_oracle_input() {
        use faultinject::{FaultPlan, SiteSpec};
        use std::sync::Arc;
        let mut o = content_oracle(77);
        let _ = o.page_fails(5, 0);
        let _ = o.page_fails(5, 0);
        assert_eq!(
            o.memo_stats(),
            MemoStats { hits: 1, misses: 1 },
            "unchanged content hits the memo"
        );
        // Same content with an injected transient flip: the evaluated
        // input differs, so the fingerprint — and hence the memo key —
        // must differ too (the memo stays sound under injection).
        let plan = Arc::new(FaultPlan::new(1).with_site(Site::DramBitFlip, SiteSpec::rate(1.0)));
        let mut s = FaultSession::with_plan(plan);
        let _ = o.page_fails_faulted(5, 0, &mut s);
        assert_eq!(s.injected(Site::DramBitFlip), 1);
        assert_eq!(
            o.memo_stats(),
            MemoStats { hits: 1, misses: 2 },
            "flipped content must miss the memo"
        );
    }
}
