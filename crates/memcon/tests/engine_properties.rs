//! Property tests of the MEMCON engine: for arbitrary write traces and
//! configurations, the report stays internally consistent and the refresh
//! states respect the mechanism's invariants.

use proptest::prelude::*;

use memcon::config::MemconConfig;
use memcon::cost::TestMode;
use memcon::engine::MemconEngine;
use memcon::refreshmgr::PageState;
use memcon::testengine::RateOracle;
use memtrace::trace::{WriteEvent, WriteTrace};

const MS: u64 = 1_000_000;

fn trace_strategy() -> impl Strategy<Value = WriteTrace> {
    let n_pages = 24u64;
    let duration_ms = 9000u64;
    proptest::collection::vec((0..duration_ms, 0..n_pages), 0..300).prop_map(move |pairs| {
        let events = pairs
            .into_iter()
            .map(|(t, page)| WriteEvent {
                time_ns: t * MS,
                page,
            })
            .collect();
        WriteTrace::new(events, duration_ms * MS, n_pages)
    })
}

fn config_strategy() -> impl Strategy<Value = MemconConfig> {
    (
        prop_oneof![Just(512.0), Just(1024.0), Just(2048.0)],
        prop_oneof![Just(TestMode::ReadAndCompare), Just(TestMode::CopyAndCompare)],
        1u32..64,
        1usize..64,
        any::<bool>(),
    )
        .prop_map(|(quantum, mode, slots, cap, steady)| {
            let mut c = MemconConfig::paper_default()
                .with_quantum_ms(quantum)
                .with_test_mode(mode);
            c.concurrent_tests = slots;
            c.write_buffer_capacity = cap;
            c.steady_state_start = steady;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn report_is_internally_consistent(
        trace in trace_strategy(),
        config in config_strategy(),
        fail_rate in 0.0f64..0.5,
    ) {
        let mut engine = MemconEngine::with_oracle(
            config,
            trace.n_pages(),
            Box::new(RateOracle::new(fail_rate, 99)),
        );
        let r = engine.run(&trace);
        prop_assert!((0.0..=r.upper_bound + 1e-9).contains(&r.refresh_reduction),
            "reduction {} out of [0, {}]", r.refresh_reduction, r.upper_bound);
        prop_assert!((0.0..=1.0).contains(&r.lo_coverage));
        prop_assert!((0.0..=1.0).contains(&r.testing_fraction));
        prop_assert!(r.lo_coverage + r.testing_fraction <= 1.0 + 1e-9);
        prop_assert!(r.refresh_ops <= r.baseline_ops + 1e-9);
        // Reduction follows the time integrals exactly.
        let implied = 1.0 - r.refresh_ops / r.baseline_ops;
        prop_assert!((implied - r.refresh_reduction).abs() < 1e-9);
        // Classified tests never exceed finished engagements.
        let t = engine.internals().tests;
        prop_assert_eq!(
            r.tests_correct + r.tests_mispredicted,
            t.completed + t.aborted
        );
        prop_assert!(t.failed <= t.completed);
        prop_assert_eq!(engine.final_states().len() as u64, trace.n_pages());
    }

    #[test]
    fn pages_written_in_final_quantum_are_not_lo(
        trace in trace_strategy(),
        config in config_strategy(),
    ) {
        let quantum_ns = (config.quantum_ms * 1e6) as u64;
        let mut engine = MemconEngine::with_oracle(
            config,
            trace.n_pages(),
            Box::new(RateOracle::new(0.0, 7)),
        );
        let _ = engine.run(&trace);
        // Any page whose last write falls within the final quantum cannot
        // have been re-tested (candidacy requires a full idle quantum after
        // the write quantum), so it must not sit at LO-REF — unless it was
        // never tested at all... which also forbids LO-REF. Either way:
        for e in trace.events() {
            if e.time_ns + quantum_ns > trace.duration_ns() {
                prop_assert_ne!(
                    engine.final_states()[e.page as usize],
                    PageState::LoRef,
                    "page {} written at {} ns is at LO-REF",
                    e.page,
                    e.time_ns
                );
            }
        }
    }

    #[test]
    fn all_failing_oracle_forbids_lo_everywhere(
        trace in trace_strategy(),
        config in config_strategy(),
    ) {
        let mut engine = MemconEngine::with_oracle(
            config,
            trace.n_pages(),
            Box::new(RateOracle::new(1.0, 3)),
        );
        let r = engine.run(&trace);
        prop_assert_eq!(r.lo_coverage, 0.0);
        for (p, &s) in engine.final_states().iter().enumerate() {
            prop_assert_ne!(s, PageState::LoRef, "page {} at LO-REF", p);
        }
    }
}
