//! Property tests of the MEMCON engine: for arbitrary write traces and
//! configurations, the report stays internally consistent and the refresh
//! states respect the mechanism's invariants.
//!
//! Originally `proptest` strategies; rewritten as seeded-PRNG loops so the
//! workspace builds hermetically offline. Each test draws its own trace and
//! configuration stream from a fixed seed and runs a few dozen cases.

use memcon::config::MemconConfig;
use memcon::cost::TestMode;
use memcon::engine::MemconEngine;
use memcon::refreshmgr::PageState;
use memcon::testengine::RateOracle;
use memtrace::trace::{WriteEvent, WriteTrace};
use memutil::rng::{Rng, SeedableRng, SmallRng};

const MS: u64 = 1_000_000;

fn random_trace(rng: &mut SmallRng) -> WriteTrace {
    let n_pages = 24u64;
    let duration_ms = 9000u64;
    let n = rng.gen_range(0usize..300);
    let events = (0..n)
        .map(|_| WriteEvent {
            time_ns: rng.gen_range(0..duration_ms) * MS,
            page: rng.gen_range(0..n_pages),
        })
        .collect();
    WriteTrace::new(events, duration_ms * MS, n_pages)
}

fn random_config(rng: &mut SmallRng) -> MemconConfig {
    let quantum = [512.0, 1024.0, 2048.0][rng.gen_range(0usize..3)];
    let mode = if rng.gen_bool(0.5) {
        TestMode::ReadAndCompare
    } else {
        TestMode::CopyAndCompare
    };
    let mut c = MemconConfig::paper_default()
        .with_quantum_ms(quantum)
        .with_test_mode(mode);
    c.concurrent_tests = rng.gen_range(1u32..64);
    c.write_buffer_capacity = rng.gen_range(1usize..64);
    c.steady_state_start = rng.gen_bool(0.5);
    c
}

#[test]
fn report_is_internally_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xE1_0001);
    for _ in 0..48 {
        let trace = random_trace(&mut rng);
        let config = random_config(&mut rng);
        let fail_rate = rng.gen_range(0.0f64..0.5);
        let mut engine = MemconEngine::with_oracle(
            config,
            trace.n_pages(),
            Box::new(RateOracle::new(fail_rate, 99)),
        );
        let r = engine.run(&trace);
        assert!(
            (0.0..=r.upper_bound + 1e-9).contains(&r.refresh_reduction),
            "reduction {} out of [0, {}]",
            r.refresh_reduction,
            r.upper_bound
        );
        assert!((0.0..=1.0).contains(&r.lo_coverage));
        assert!((0.0..=1.0).contains(&r.testing_fraction));
        assert!(r.lo_coverage + r.testing_fraction <= 1.0 + 1e-9);
        assert!(r.refresh_ops <= r.baseline_ops + 1e-9);
        // Reduction follows the time integrals exactly.
        let implied = 1.0 - r.refresh_ops / r.baseline_ops;
        assert!((implied - r.refresh_reduction).abs() < 1e-9);
        // Classified tests never exceed finished engagements.
        let t = engine.internals().tests;
        assert_eq!(
            r.tests_correct + r.tests_mispredicted,
            t.completed + t.aborted
        );
        assert!(t.failed <= t.completed);
        assert_eq!(engine.final_states().len() as u64, trace.n_pages());
    }
}

#[test]
fn pages_written_in_final_quantum_are_not_lo() {
    let mut rng = SmallRng::seed_from_u64(0xE1_0002);
    for _ in 0..48 {
        let trace = random_trace(&mut rng);
        let config = random_config(&mut rng);
        let quantum_ns = (config.quantum_ms * 1e6) as u64;
        let mut engine =
            MemconEngine::with_oracle(config, trace.n_pages(), Box::new(RateOracle::new(0.0, 7)));
        let _ = engine.run(&trace);
        // Any page whose last write falls within the final quantum cannot
        // have been re-tested (candidacy requires a full idle quantum after
        // the write quantum), so it must not sit at LO-REF — unless it was
        // never tested at all... which also forbids LO-REF. Either way:
        for e in trace.events() {
            if e.time_ns + quantum_ns > trace.duration_ns() {
                assert_ne!(
                    engine.final_states()[e.page as usize],
                    PageState::LoRef,
                    "page {} written at {} ns is at LO-REF",
                    e.page,
                    e.time_ns
                );
            }
        }
    }
}

#[test]
fn all_failing_oracle_forbids_lo_everywhere() {
    let mut rng = SmallRng::seed_from_u64(0xE1_0003);
    for _ in 0..48 {
        let trace = random_trace(&mut rng);
        let config = random_config(&mut rng);
        let mut engine =
            MemconEngine::with_oracle(config, trace.n_pages(), Box::new(RateOracle::new(1.0, 3)));
        let r = engine.run(&trace);
        assert_eq!(r.lo_coverage, 0.0);
        for (p, &s) in engine.final_states().iter().enumerate() {
            assert_ne!(s, PageState::LoRef, "page {p} at LO-REF");
        }
    }
}
