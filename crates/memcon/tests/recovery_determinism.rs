//! Recovery-path determinism under a fixed fault plan.
//!
//! The chaos gate's core contract, stated as a property: for any plan
//! seed, fanning a workload fleet across the worker pool must leave
//! [`RecoveryStats`] and the final refresh-bin distribution bit-identical
//! at any worker count, because every engine owns its plan and therefore
//! its fault-decision streams (`MemconEngine::set_fault_plan`), never a
//! shared global one.

use std::sync::Arc;

use faultinject::{FaultPlan, Site, SiteSpec};
use memcon::config::MemconConfig;
use memcon::engine::{MemconEngine, RecoveryStats};
use memcon::refreshmgr::PageState;
use memtrace::workload::WorkloadProfile;

/// Runs one engine per workload at the given worker count and returns
/// each engine's recovery stats and final refresh bins, in fleet order.
fn run_fleet(
    plan: &Arc<FaultPlan>,
    traces: &[memtrace::trace::WriteTrace],
    jobs: usize,
) -> Vec<(RecoveryStats, Vec<PageState>)> {
    memutil::par::ordered_map_with(jobs, traces.len(), |i| {
        let mut engine = MemconEngine::new(MemconConfig::paper_default(), traces[i].n_pages());
        engine.set_fault_plan(Some(Arc::clone(plan)));
        let _ = engine.run(&traces[i]);
        engine.verify_refresh_correctness().unwrap();
        (*engine.recovery_stats(), engine.final_states().to_vec())
    })
}

#[test]
fn recovery_stats_and_refresh_bins_are_jobs_invariant() {
    let workloads = [
        WorkloadProfile::netflix(),
        WorkloadProfile::ac_brotherhood(),
        WorkloadProfile::system_mgt(),
        WorkloadProfile::all().swap_remove(7),
    ];
    for seed in [1u64, 0xBAD5_EED, 0xC4A0_5000] {
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with_site(Site::TestPreempt, SiteSpec::rate(0.10))
                .with_site(Site::TornRead, SiteSpec::rate(0.10))
                .with_site(Site::EccCorrectable, SiteSpec::rate(0.20))
                .with_site(Site::EccUncorrectable, SiteSpec::rate(0.03)),
        );
        let traces: Vec<_> = workloads
            .iter()
            .map(|w| w.clone().scaled(0.01).generate(seed))
            .collect();
        let baseline = run_fleet(&plan, &traces, 1);
        // The plan must actually exercise the recovery machinery, or the
        // property is vacuous.
        let injected: u64 = baseline
            .iter()
            .map(|(r, _)| r.faults_injected.iter().sum::<u64>())
            .sum();
        assert!(injected > 0, "seed {seed:#x}: plan never fired");
        for jobs in [2usize, 8] {
            assert_eq!(
                baseline,
                run_fleet(&plan, &traces, jobs),
                "seed {seed:#x}: fleet diverged at jobs={jobs}"
            );
        }
    }
}
