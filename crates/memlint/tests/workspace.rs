//! Workspace-wide properties: the lexer must be total, deterministic, and
//! per-token idempotent on every `.rs` file in the repository — including
//! this one — plus a seeded fuzz loop over random slices, and an
//! end-to-end smoke run of the full analyzer.

use memlint::lexer::{self, Kind};
use memutil::rng::{RngCore, SeedableRng, SmallRng};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/memlint has a workspace root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git");
            if !skip {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn workspace_sources() -> Vec<(PathBuf, String)> {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    for top in ["src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files);
        }
    }
    files.sort();
    assert!(
        files.len() > 30,
        "workspace walk found only {}",
        files.len()
    );
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable source");
            (p, text)
        })
        .collect()
}

/// Totality: the token texts tile the input exactly (gaps are whitespace
/// only), so no byte of any workspace source confuses the lexer into
/// skipping or double-counting.
fn assert_total(src: &str, context: &str) {
    let tokens = lexer::lex(src);
    let mut covered = 0usize;
    let mut line = 1u32;
    for t in &tokens {
        assert!(
            t.start >= covered,
            "{context}: overlapping token at {}",
            t.start
        );
        let gap = &src[covered..t.start];
        assert!(
            gap.chars().all(char::is_whitespace),
            "{context}: non-whitespace gap {gap:?} before byte {}",
            t.start
        );
        line += gap.bytes().filter(|&b| b == b'\n').count() as u32;
        assert_eq!(
            t.line, line,
            "{context}: wrong line for token at {}",
            t.start
        );
        line += t.text.bytes().filter(|&b| b == b'\n').count() as u32;
        covered = t.start + t.text.len();
    }
    assert!(
        src[covered..].chars().all(char::is_whitespace),
        "{context}: trailing non-whitespace after byte {covered}"
    );
}

#[test]
fn lexing_is_total_on_every_workspace_file() {
    for (path, text) in workspace_sources() {
        assert_total(&text, &path.display().to_string());
    }
}

#[test]
fn lexing_is_deterministic_on_every_workspace_file() {
    for (path, text) in workspace_sources() {
        let a = lexer::lex(&text);
        let b = lexer::lex(&text);
        assert_eq!(a, b, "{}: two lexes differ", path.display());
    }
}

/// Idempotence, per token: re-lexing one token's own text yields exactly
/// one token of the same kind and text. (Whole-stream re-joining is not
/// meaningful — a line comment swallows anything appended to its line.)
#[test]
fn lexing_is_idempotent_per_token_on_every_workspace_file() {
    for (path, text) in workspace_sources() {
        for t in lexer::lex(&text) {
            let again = lexer::lex(t.text);
            assert_eq!(
                again.len(),
                1,
                "{}: token {:?} re-lexes to {} tokens",
                path.display(),
                t.text,
                again.len()
            );
            assert_eq!(
                again[0].kind,
                t.kind,
                "{}: token {:?}",
                path.display(),
                t.text
            );
            assert_eq!(again[0].text, t.text, "{}", path.display());
        }
    }
}

/// Seeded fuzz: lexing arbitrary slices of real source (usually invalid
/// Rust — split mid-string, mid-comment, mid-token) must still be total
/// and panic-free. Character-boundary slicing keeps inputs valid UTF-8.
#[test]
fn lexing_survives_seeded_random_slices() {
    let sources = workspace_sources();
    let mut rng = SmallRng::seed_from_u64(0x4d45_4d43_4f4e); // "MEMCON"
    for round in 0..400u32 {
        let (path, text) = &sources[(rng.next_u64() as usize) % sources.len()];
        if text.is_empty() {
            continue;
        }
        let mut a = (rng.next_u64() as usize) % (text.len() + 1);
        let mut b = (rng.next_u64() as usize) % (text.len() + 1);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        while !text.is_char_boundary(a) {
            a -= 1;
        }
        while !text.is_char_boundary(b) {
            b -= 1;
        }
        let slice = &text[a..b.max(a)];
        assert_total(
            slice,
            &format!("round {round}, {}[{a}..{b}]", path.display()),
        );
    }
}

/// Comments and strings are exactly the token kinds rules skip; make sure
/// the workspace contains a healthy mix of all kinds (guards against the
/// lexer silently degrading everything to `Punct`).
#[test]
fn workspace_token_kind_census_is_plausible() {
    let mut idents = 0usize;
    let mut strings = 0usize;
    let mut comments = 0usize;
    let mut lifetimes = 0usize;
    for (_, text) in workspace_sources() {
        for t in lexer::lex(&text) {
            match t.kind {
                Kind::Ident => idents += 1,
                Kind::Str => strings += 1,
                Kind::LineComment | Kind::BlockComment => comments += 1,
                Kind::Lifetime => lifetimes += 1,
                _ => {}
            }
        }
    }
    assert!(idents > 10_000, "only {idents} identifiers");
    assert!(strings > 500, "only {strings} strings");
    assert!(comments > 1_000, "only {comments} comments");
    assert!(lifetimes > 10, "only {lifetimes} lifetimes");
}

/// End-to-end: the analyzer runs over the real workspace without errors,
/// its JSON report parses and round-trips, and the ratchet on disk is in
/// sync with the tree (CI fails otherwise, so catch it in tier-1 too).
#[test]
fn analyzer_runs_clean_on_the_workspace() {
    let outcome = memlint::run(&workspace_root(), false).expect("lint run succeeds");
    assert!(outcome.files > 30);
    let json = outcome.to_json();
    let text = json.emit();
    let back = memutil::json::Json::parse(&text).expect("report parses");
    assert_eq!(back, json);
    assert_eq!(
        back.get("schema").and_then(memutil::json::Json::as_str),
        Some(memlint::REPORT_SCHEMA)
    );
    assert!(outcome.passed(), "net-new lint violations:\n{outcome}");
    assert!(
        outcome.ratchet_in_sync,
        "ratchet out of sync; run `cargo run -p xtask -- lint --update-ratchet`"
    );
}

/// Diagnostic helper, not part of the suite: prints every current finding.
/// Run with `cargo test -p memlint --test workspace -- --ignored --nocapture`.
#[test]
#[ignore = "diagnostic: prints every current finding"]
fn print_workspace_findings() {
    let outcome = memlint::run(&workspace_root(), false).expect("lint run succeeds");
    for (v, frozen) in outcome.violations.iter().zip(&outcome.frozen) {
        println!("{}{}", if *frozen { "frozen " } else { "NEW    " }, v);
    }
    println!("{outcome}");
}
