//! Parity contract with the legacy substring engine (`xtask/src/lint.rs`,
//! deleted in the memlint v2 promotion).
//!
//! Before the old engine was removed, both engines ran side by side over
//! the real workspace: the token engine reproduced every one of the 53
//! frozen v1 violations exactly (35 `no-unwrap`, 2 `no-panic`,
//! 10 `cast-truncation`, 4 `float-eq`, 2 `no-instant` → `wall-clock`)
//! with zero extras and zero misses. This suite pins the behaviors that
//! demonstration relied on, so the contract survives the old engine's
//! deletion: the legacy construct matrix, the legacy file-class gates,
//! and the cases where the token engine is deliberately *stricter-safe*
//! (constructs the line-stripper misparsed but which never appeared in
//! the frozen set).

use memlint::rules::scan_file;
use memlint::FileScan;

fn rules_for(path: &str, src: &str) -> Vec<&'static str> {
    let scan = FileScan::new(path, src);
    let mut rules: Vec<&'static str> = scan_file(&scan).into_iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

/// Every construct the legacy engine flagged, and the rule it maps to in
/// v2 (`no-instant` became `wall-clock`). One fixture per frozen-set rule.
#[test]
fn legacy_construct_matrix() {
    let cases: &[(&str, &[&str])] = &[
        (
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            &["no-unwrap"],
        ),
        (
            "fn f(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n",
            &["no-unwrap"],
        ),
        ("fn f() { panic!(\"boom\") }\n", &["no-panic"]),
        (
            "fn f(addr: u64) -> u32 { addr as u32 }\n",
            &["cast-truncation"],
        ),
        (
            "fn f(lat_ns: f64, x: f64) -> bool { lat_ns == x }\n",
            &["float-eq"],
        ),
        (
            "fn f() { let t = std::time::Instant::now(); drop(t); }\n",
            &["wall-clock"],
        ),
    ];
    for (src, expect) in cases {
        assert_eq!(
            rules_for("crates/demo/src/lib.rs", src),
            *expect,
            "fixture: {src:?}"
        );
    }
}

/// The legacy engine's file-class gates, byte-for-byte: tests see no
/// rules at all; binaries keep the data-integrity rules but drop the
/// abort-hygiene ones.
#[test]
fn legacy_file_class_gates() {
    let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let cast = "fn f(row: u64) -> u16 { row as u16 }\n";
    for test_path in [
        "crates/demo/tests/it.rs",
        "crates/demo/benches/b.rs",
        "crates/demo/examples/e.rs",
    ] {
        assert!(rules_for(test_path, unwrap).is_empty(), "{test_path}");
        assert!(rules_for(test_path, cast).is_empty(), "{test_path}");
    }
    for bin_path in ["crates/demo/src/main.rs", "crates/demo/src/bin/tool.rs"] {
        assert!(rules_for(bin_path, unwrap).is_empty(), "{bin_path}");
        assert_eq!(
            rules_for(bin_path, cast),
            vec!["cast-truncation"],
            "{bin_path}"
        );
    }
}

/// The legacy engine stripped strings and comments with a line-based
/// scanner; the token engine must agree on everything that scanner got
/// right…
#[test]
fn legacy_string_and_comment_stripping_parity() {
    let src = "fn f() -> &'static str {\n\
                   // panic! lives here, and x.unwrap() too\n\
                   /* addr as u16 */\n\
                   \"call .unwrap() or panic!(now)\"\n\
               }\n";
    assert!(rules_for("crates/demo/src/lib.rs", src).is_empty());
}

/// …and fix what it got wrong. Raw strings with embedded quotes defeated
/// line-based stripping (the old engine could leak the tail of the line
/// back into scanning); the lexer handles them exactly. The workspace
/// survey showed no such line in the frozen set, so fixing this changes
/// no frozen entry — it only prevents future false positives.
#[test]
fn raw_strings_no_longer_confuse_scanning() {
    let src = "const R: &str = r#\"quote \" then x.unwrap() and panic!\"#;\n\
               fn real(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let scan = FileScan::new("crates/demo/src/lib.rs", src);
    let hits = scan_file(&scan);
    // Exactly the real unwrap on line 2 — nothing from inside the raw string.
    assert_eq!(hits.len(), 1);
    assert_eq!((hits[0].rule, hits[0].line), ("no-unwrap", 2));
}

/// `wall-clock` subsumes the legacy `no-instant`: same hits on
/// `Instant::now`, plus `SystemTime::now` (which the old engine missed),
/// same `crates/telemetry/` exemption.
#[test]
fn wall_clock_subsumes_no_instant() {
    let instant = "fn f() { let t = std::time::Instant::now(); drop(t); }\n";
    let system = "fn f() { let t = std::time::SystemTime::now(); drop(t); }\n";
    assert_eq!(
        rules_for("crates/demo/src/lib.rs", instant),
        vec!["wall-clock"]
    );
    assert_eq!(
        rules_for("crates/demo/src/lib.rs", system),
        vec!["wall-clock"]
    );
    assert!(rules_for("crates/telemetry/src/spans.rs", instant).is_empty());
}

/// The legacy allow marker (`memlint: allow`) keeps working unchanged,
/// and the v2 rule-scoped form narrows it.
#[test]
fn allow_marker_forms_are_backward_compatible() {
    let legacy: String = [
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // memlint:",
        " allow\n",
    ]
    .concat();
    assert!(rules_for("crates/demo/src/lib.rs", &legacy).is_empty());
    let scoped: String = [
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // memlint:",
        " allow(no-panic)\n",
    ]
    .concat();
    assert_eq!(
        rules_for("crates/demo/src/lib.rs", &scoped),
        vec!["no-unwrap"]
    );
}
