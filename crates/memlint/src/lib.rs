//! memlint — token-level determinism analyzer for the MEMCON workspace.
//!
//! The crate is a library (driven by `xtask lint` / `xtask ci`) built in
//! four layers:
//!
//! * [`lexer`] — a hand-written, total Rust lexer (raw strings, nested
//!   block comments, char-vs-lifetime, doc comments);
//! * [`source`] — per-file structure: `#[cfg(test)]` scoping,
//!   `thread_local!` regions, a lightweight `fn`/`mod`/`impl` item model,
//!   and allow-marker placement;
//! * [`rules`] — nine token-pattern rules (the five legacy data-integrity
//!   rules re-implemented on tokens, plus the determinism/concurrency
//!   pass: `map-iter-order`, `thread-outside-par`, `global-mut-state`,
//!   `wall-clock`, `env-read`);
//! * [`artifact`] — cross-artifact consistency checks spanning code, the
//!   telemetry golden file, and the fault-site registry.
//!
//! Pre-existing violations are frozen in a [`ratchet`] keyed by
//! `(rule, file, normalized-line fingerprint)`; only new findings fail.
//! Everything is deterministic: files are walked in sorted order, all
//! intermediate maps are B-trees, and the JSON report
//! (schema [`REPORT_SCHEMA`]) is byte-stable for a given tree.
//!
//! memlint lints itself: this crate's sources pass every rule with no
//! frozen entries.

pub mod artifact;
pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod source;

pub use rules::Violation;
pub use source::{classify, FileClass, FileScan};

use memutil::json::Json;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Schema tag of the JSON report emitted by [`Outcome::to_json`].
pub const REPORT_SCHEMA: &str = "memcon-memlint/v1";

/// Every rule identifier — token rules then cross-artifact rules — in
/// report order.
#[must_use]
pub fn all_rules() -> Vec<&'static str> {
    rules::RULES
        .iter()
        .chain(artifact::ARTIFACT_RULES.iter())
        .copied()
        .collect()
}

/// The outcome of a full lint run.
#[derive(Debug)]
pub struct Outcome {
    /// Files scanned.
    pub files: usize,
    /// Every violation found, sorted by (path, line, rule); frozen ones
    /// included.
    pub violations: Vec<Violation>,
    /// Parallel to `violations`: covered by the ratchet.
    pub frozen: Vec<bool>,
    /// Ratchet keys with counts above their freeze (new fingerprints
    /// included), as (key, current, frozen).
    pub regressions: Vec<ratchet::Delta>,
    /// Ratchet keys now below their freeze — debt paid down.
    pub improvements: Vec<ratchet::Delta>,
    /// Whether the on-disk ratchet byte-matches what `--update-ratchet`
    /// would write for this tree (i.e. the update round-trips to an empty
    /// diff).
    pub ratchet_in_sync: bool,
    /// Whether `--update-ratchet` rewrote the ratchet file.
    pub updated: bool,
}

impl Outcome {
    /// Whether the lint gate passes (no regressions).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Count of net-new (non-frozen) violations.
    #[must_use]
    pub fn new_count(&self) -> usize {
        self.frozen.iter().filter(|f| !**f).count()
    }

    /// The full machine-readable report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut items = Json::arr();
        for (v, frozen) in self.violations.iter().zip(&self.frozen) {
            items = items.push(
                Json::obj()
                    .field("rule", v.rule)
                    .field("path", v.path.as_str())
                    .field("line", u64::from(v.line))
                    .field("excerpt", v.excerpt.as_str())
                    .field(
                        "fingerprint",
                        format!("{:016x}", ratchet::fingerprint(v.rule, &v.excerpt)),
                    )
                    .field("frozen", *frozen),
            );
        }
        Json::obj()
            .field("schema", REPORT_SCHEMA)
            .field("files", self.files)
            .field("rules", all_rules().into_iter().collect::<Vec<_>>())
            .field("total", self.violations.len())
            .field("frozen", self.violations.len() - self.new_count())
            .field("new", self.new_count())
            .field("violations", items)
            .field("improvements", self.improvements.len())
            .field("ratchet_in_sync", self.ratchet_in_sync)
            .field("passed", self.passed())
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (v, frozen) in self.violations.iter().zip(&self.frozen) {
            if !*frozen {
                writeln!(f, "memlint: new: {v}")?;
            }
        }
        for ((rule, path, _fp), current, allowed) in &self.improvements {
            writeln!(
                f,
                "memlint: note: {rule} improved in {path}: {current} (ratchet froze {allowed}) — \
                 run `cargo run -p xtask -- lint --update-ratchet` to tighten"
            )?;
        }
        if self.updated {
            writeln!(f, "memlint: ratchet updated")?;
        } else if !self.ratchet_in_sync {
            writeln!(
                f,
                "memlint: note: ratchet file is out of sync with this tree — \
                 run `cargo run -p xtask -- lint --update-ratchet`"
            )?;
        }
        writeln!(
            f,
            "memlint: {} files, {} violations ({} frozen, {} new), {}",
            self.files,
            self.violations.len(),
            self.violations.len() - self.new_count(),
            self.new_count(),
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Recursively collects `.rs` files below `dir` (skipping `target/` and
/// `.git/`), in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git")
            {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root/crates` plus the umbrella crate's
/// `src/`, `tests/`, and `examples/`, runs the cross-artifact checks, and
/// compares against the ratchet at `root/memlint.ratchet` (optionally
/// rewriting it).
///
/// # Errors
///
/// I/O failures and a malformed (or v1-format) ratchet file are reported
/// as strings.
pub fn run(root: &Path, update_ratchet: bool) -> Result<Outcome, String> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    for top in ["src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut contents = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        contents.push((rel, text));
    }
    let scans: Vec<FileScan<'_>> = contents
        .iter()
        .map(|(rel, text)| FileScan::new(rel, text))
        .collect();

    let golden = fs::read_to_string(root.join("TELEMETRY_expected.json")).ok();

    let mut violations = Vec::new();
    for scan in &scans {
        violations.extend(rules::scan_file(scan));
    }
    violations.extend(artifact::check(&scans, golden.as_deref()));
    violations.sort_by(|a, b| {
        let order = |r: &str| all_rules().iter().position(|x| *x == r);
        (&a.path, a.line, order(a.rule)).cmp(&(&b.path, b.line, order(b.rule)))
    });

    let ratchet_path = root.join(ratchet::RATCHET_FILE);
    let disk_text = if ratchet_path.is_file() {
        Some(
            fs::read_to_string(&ratchet_path)
                .map_err(|e| format!("cannot read {}: {e}", ratchet::RATCHET_FILE))?,
        )
    } else {
        None
    };
    let frozen_map = match &disk_text {
        Some(text) => ratchet::parse(text)?,
        None => ratchet::Ratchet::new(),
    };

    let (current, hints) = ratchet::collapse(&violations);
    let (regressions, improvements) = ratchet::compare(&current, &frozen_map);
    let frozen = ratchet::mark_frozen(&violations, &frozen_map);
    let formatted = ratchet::format(&current, &hints);
    let ratchet_in_sync = match &disk_text {
        Some(text) => *text == formatted,
        None => current.is_empty(),
    };

    let mut updated = false;
    if update_ratchet {
        fs::write(&ratchet_path, &formatted)
            .map_err(|e| format!("cannot write {}: {e}", ratchet::RATCHET_FILE))?;
        updated = true;
    }

    Ok(Outcome {
        files: files.len(),
        frozen: if updated {
            vec![true; violations.len()]
        } else {
            frozen
        },
        violations,
        regressions: if updated { Vec::new() } else { regressions },
        improvements: if updated { Vec::new() } else { improvements },
        ratchet_in_sync: updated || ratchet_in_sync,
        updated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(violations: Vec<Violation>, frozen: Vec<bool>) -> Outcome {
        let regressions = if frozen.iter().all(|f| *f) {
            Vec::new()
        } else {
            vec![(("r".to_string(), "p".to_string(), 1u64), 1usize, 0usize)]
        };
        Outcome {
            files: 1,
            violations,
            frozen,
            regressions,
            improvements: Vec::new(),
            ratchet_in_sync: true,
            updated: false,
        }
    }

    fn v(rule: &'static str, line: u32) -> Violation {
        Violation {
            rule,
            path: "crates/a/src/lib.rs".to_string(),
            line,
            excerpt: "x.unwrap();".to_string(),
        }
    }

    #[test]
    fn json_report_shape() {
        let out = outcome(vec![v("no-unwrap", 3)], vec![false]);
        let json = out.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(json.get("new").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("passed"), Some(&Json::Bool(false)));
        // Report is valid JSON and round-trips.
        let text = json.emit();
        assert_eq!(Json::parse(&text).expect("report parses"), json);
        // The violation entry carries its fingerprint.
        let Some(Json::Arr(items)) = json.get("violations") else {
            panic!("violations array");
        };
        let fp = items[0]
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fp");
        assert_eq!(fp.len(), 16);
    }

    #[test]
    fn display_lists_only_new_violations() {
        let out = outcome(
            vec![v("no-unwrap", 3), v("no-unwrap", 9)],
            vec![true, false],
        );
        let text = out.to_string();
        assert_eq!(text.matches("memlint: new:").count(), 1);
        assert!(text.contains("2 violations (1 frozen, 1 new)"));
        assert!(text.contains("FAIL"));
        let clean = outcome(vec![v("no-unwrap", 3)], vec![true]);
        assert!(clean.to_string().contains("PASS"));
    }

    #[test]
    fn all_rules_cover_both_passes() {
        let rules = all_rules();
        assert_eq!(rules.len(), 12);
        assert!(rules.contains(&"map-iter-order"));
        assert!(rules.contains(&"schema-once"));
    }
}
