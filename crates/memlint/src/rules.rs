//! The lint rules, implemented as patterns over the token stream.
//!
//! Every rule walks [`FileScan::code_tokens`]-style filtered tokens
//! (comments and `#[cfg(test)]` regions excluded), so string literals,
//! comments, and test code can never produce findings. Allow markers are
//! applied by the caller ([`scan_file`]) after a rule fires, keeping the
//! rules themselves oblivious to suppression.

use crate::lexer::Kind;
use crate::source::{FileClass, FileScan};
use std::fmt;

/// One rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// All rule identifiers, in report order. The first five are the legacy
/// rules re-implemented on tokens (`wall-clock` subsumes the old
/// `no-instant`); the last four are the determinism/concurrency pass.
pub const RULES: [&str; 9] = [
    "no-unwrap",
    "no-panic",
    "cast-truncation",
    "float-eq",
    "wall-clock",
    "map-iter-order",
    "thread-outside-par",
    "global-mut-state",
    "env-read",
];

/// Integer types narrower than the 64-bit address/cycle domain.
const NARROW_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments marking a line as address/cycle arithmetic.
const ADDR_CYCLE_WORDS: [&str; 6] = ["cycle", "addr", "row", "col", "bank", "page"];

/// Map/set methods whose results depend on hash iteration order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Interior-mutability wrappers that make a `static` mutable global state.
const INTERIOR_MUT_TYPES: [&str; 18] = [
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "Mutex",
    "RwLock",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "RefCell",
    "UnsafeCell",
];

/// Files exempt from `global-mut-state`: the two sanctioned install-guard
/// registries, whose statics *are* the feature (guarded by install/reset
/// discipline and covered by their own tests).
const GLOBAL_STATE_REGISTRIES: [&str; 2] = [
    "crates/telemetry/src/registry.rs",
    "crates/faultinject/src/lib.rs",
];

/// The one file allowed to spawn threads (the deterministic fan-out
/// helper) and to read the environment (`MEMCON_JOBS` config resolution).
const PAR_FILE: &str = "crates/memutil/src/par.rs";

/// Scans one analyzed file with every applicable rule, honoring allow
/// markers and the per-rule sanctioned-path exemptions.
#[must_use]
pub fn scan_file(scan: &FileScan<'_>) -> Vec<Violation> {
    if scan.class == FileClass::Test {
        return Vec::new();
    }
    let ctx = Ctx::new(scan);
    let mut out = Vec::new();

    if scan.class == FileClass::Library {
        no_unwrap(&ctx, &mut out);
        no_panic(&ctx, &mut out);
        if !GLOBAL_STATE_REGISTRIES.contains(&scan.path.as_str()) {
            global_mut_state(&ctx, &mut out);
        }
        map_iter_order(&ctx, &mut out);
        if scan.path != PAR_FILE {
            env_read(&ctx, &mut out);
        }
    }
    cast_truncation(&ctx, &mut out);
    float_eq(&ctx, &mut out);
    if !scan.path.starts_with("crates/telemetry/") {
        wall_clock(&ctx, &mut out);
    }
    if scan.path != PAR_FILE {
        thread_outside_par(&ctx, &mut out);
    }

    out.retain(|v| !scan.allowed(v.rule, v.line));
    out.sort_by_key(|v| (v.line, RULES.iter().position(|r| *r == v.rule)));
    out.dedup();
    out
}

/// Rule context: the scan plus its code-token index (non-comment,
/// non-test tokens, in source order).
struct Ctx<'a, 's> {
    scan: &'a FileScan<'s>,
    code: Vec<usize>,
}

impl<'a, 's> Ctx<'a, 's> {
    fn new(scan: &'a FileScan<'s>) -> Self {
        let code = scan
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| !t.is_comment() && !scan.in_test[*i])
            .map(|(i, _)| i)
            .collect();
        Ctx { scan, code }
    }

    fn text(&self, c: usize) -> &str {
        self.code.get(c).map_or("", |&i| self.scan.tokens[i].text)
    }

    fn kind(&self, c: usize) -> Option<Kind> {
        self.code.get(c).map(|&i| self.scan.tokens[i].kind)
    }

    fn line(&self, c: usize) -> u32 {
        self.code.get(c).map_or(0, |&i| self.scan.tokens[i].line)
    }

    fn is_ident(&self, c: usize, name: &str) -> bool {
        self.kind(c) == Some(Kind::Ident) && self.text(c) == name
    }

    fn push(&self, out: &mut Vec<Violation>, rule: &'static str, c: usize) {
        let line = self.line(c);
        out.push(Violation {
            rule,
            path: self.scan.path.clone(),
            line,
            excerpt: self.scan.line_text(line).to_string(),
        });
    }
}

/// `.unwrap()` / `.expect(…)` in non-test library code: library crates
/// must surface errors as values; aborting inside a long
/// figure-reproduction run loses hours of work.
fn no_unwrap(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    for c in 0..ctx.code.len() {
        if ctx.text(c) != "." || ctx.kind(c + 1) != Some(Kind::Ident) {
            continue;
        }
        let hit = match ctx.text(c + 1) {
            "unwrap" => ctx.text(c + 2) == "(" && ctx.text(c + 3) == ")",
            "expect" => ctx.text(c + 2) == "(",
            _ => false,
        };
        if hit {
            ctx.push(out, "no-unwrap", c + 1);
        }
    }
}

/// `panic!` in non-test library code, same rationale as `no-unwrap`.
/// Deliberate invariant panics carry an inline allow marker.
fn no_panic(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    for c in 0..ctx.code.len() {
        if ctx.is_ident(c, "panic") && ctx.text(c + 1) == "!" {
            ctx.push(out, "no-panic", c);
        }
    }
}

/// `as` casts to a type narrower than 64 bits on lines handling addresses
/// or cycle counts. A truncated cycle counter silently wraps after hours
/// of simulated time.
fn cast_truncation(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    for c in 0..ctx.code.len() {
        if !ctx.is_ident(c, "as") || !NARROW_TYPES.contains(&ctx.text(c + 1)) {
            continue;
        }
        let line = ctx.line(c);
        let addr_context = ctx.code.iter().any(|&i| {
            let t = &ctx.scan.tokens[i];
            t.line == line
                && t.kind == Kind::Ident
                && ADDR_CYCLE_WORDS
                    .iter()
                    .any(|w| t.text.to_lowercase().contains(w))
        });
        if addr_context {
            ctx.push(out, "cast-truncation", c);
        }
    }
}

/// Whether an identifier names a timing quantity.
fn timing_ident(text: &str) -> bool {
    text.contains("_ns") || text.contains("_ms")
}

/// `==` / `!=` where an operand chain mentions a timing identifier
/// (`*_ns` / `*_ms`). Timing arithmetic mixes ns→cycle conversions; exact
/// float comparison is almost always a bug outside test assertions.
fn float_eq(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    let operand_chain = |c: usize| -> bool {
        matches!(ctx.kind(c), Some(Kind::Ident | Kind::Num))
            || matches!(ctx.text(c), "." | "(" | ")" | "::")
    };
    for c in 0..ctx.code.len() {
        if !matches!(ctx.text(c), "==" | "!=") {
            continue;
        }
        let mut hit = false;
        // Walk each direction over the operand chain, bounded.
        for step in 1..=8usize {
            let Some(b) = c.checked_sub(step) else { break };
            if !operand_chain(b) {
                break;
            }
            hit |= ctx.kind(b) == Some(Kind::Ident) && timing_ident(ctx.text(b));
        }
        for step in 1..=8usize {
            if !operand_chain(c + step) {
                break;
            }
            hit |= ctx.kind(c + step) == Some(Kind::Ident) && timing_ident(ctx.text(c + step));
        }
        if hit {
            ctx.push(out, "float-eq", c);
        }
    }
}

/// `Instant::now` / `SystemTime::now` outside `crates/telemetry/`. Wall
/// clocks in simulation code are the classic way nondeterminism sneaks
/// into "deterministic" results; all timing must flow through telemetry
/// spans or the frozen `memutil::bench` harness. Subsumes the old
/// `no-instant` rule.
fn wall_clock(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    for c in 0..ctx.code.len() {
        if matches!(ctx.text(c), "Instant" | "SystemTime")
            && ctx.kind(c) == Some(Kind::Ident)
            && ctx.text(c + 1) == "::"
            && ctx.is_ident(c + 2, "now")
        {
            ctx.push(out, "wall-clock", c);
        }
    }
}

/// `std::thread::spawn` / `thread::scope` outside `memutil::par`. Ad-hoc
/// threads bypass the deterministic fan-out (fixed chunking, ordered
/// joins) that the jobs-invariance gate certifies.
fn thread_outside_par(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    for c in 0..ctx.code.len() {
        if ctx.is_ident(c, "thread")
            && ctx.text(c + 1) == "::"
            && matches!(ctx.text(c + 2), "spawn" | "scope")
        {
            ctx.push(out, "thread-outside-par", c);
        }
    }
}

/// `std::env::var` (and friends) outside config resolution. Environment
/// reads scattered through library code make results depend on invisible
/// ambient state; all knobs route through `memutil::par`'s jobs resolver
/// or explicit options structs.
fn env_read(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    for c in 0..ctx.code.len() {
        if ctx.is_ident(c, "env")
            && ctx.text(c + 1) == "::"
            && matches!(ctx.text(c + 2), "var" | "var_os" | "vars" | "vars_os")
        {
            ctx.push(out, "env-read", c);
        }
    }
}

/// `static` items with interior-mutability types (or `static mut`)
/// outside the sanctioned registries. Mutable globals are cross-run state
/// the determinism gates cannot see; `thread_local!` statics are exempt
/// (per-thread, torn down with the worker).
fn global_mut_state(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    for c in 0..ctx.code.len() {
        if !ctx.is_ident(c, "static") {
            continue;
        }
        let orig = ctx.code[c];
        if ctx.scan.in_thread_local[orig] {
            continue;
        }
        if ctx.is_ident(c + 1, "mut") {
            ctx.push(out, "global-mut-state", c);
            continue;
        }
        // `static NAME: <type…> =` — flag when the type mentions an
        // interior-mutability wrapper.
        if ctx.kind(c + 1) != Some(Kind::Ident) || ctx.text(c + 2) != ":" {
            continue;
        }
        if type_window_mentions(ctx, c + 3, &INTERIOR_MUT_TYPES) {
            ctx.push(out, "global-mut-state", c);
        }
    }
}

/// Scans a type position starting at code index `c` until a terminator at
/// angle-bracket depth zero (or a 40-token safety bound), returning whether
/// any identifier in the window is in `needles`.
fn type_window_mentions(ctx: &Ctx<'_, '_>, c: usize, needles: &[&str]) -> bool {
    let mut depth = 0i64;
    for step in 0..40usize {
        let d = c + step;
        if ctx.kind(d).is_none() {
            return false;
        }
        match ctx.text(d) {
            "<" => depth += 1,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "<<" => depth += 2,
            "," | ";" | "=" | "{" | "}" | ")" | "|" if depth <= 0 => return false,
            t if ctx.kind(d) == Some(Kind::Ident) && needles.contains(&t) => return true,
            _ => {}
        }
    }
    false
}

/// Iterating a `HashMap`/`HashSet` in non-test library code. `std`'s hash
/// maps use a per-process random seed, so iteration order differs between
/// runs — anything order-dependent downstream (output files, free-list
/// ordering, tie-breaks) silently breaks bit-identical reproduction.
///
/// Detection is two-pass and file-local: first collect every name bound
/// to a `HashMap`/`HashSet` (typed bindings, struct fields, parameters,
/// and `= HashMap::new()`-style initializers), then flag order-sensitive
/// method calls on those names and `for` loops whose iterated expression
/// mentions one.
fn map_iter_order(ctx: &Ctx<'_, '_>, out: &mut Vec<Violation>) {
    let names = collect_map_names(ctx);
    if names.is_empty() {
        return;
    }
    let mut lines_hit = std::collections::BTreeSet::new();

    for c in 0..ctx.code.len() {
        // name.iter() / name.keys() / name.drain() / …
        if ctx.kind(c) == Some(Kind::Ident)
            && names.contains(ctx.text(c))
            && ctx.text(c + 1) == "."
            && ctx.kind(c + 2) == Some(Kind::Ident)
            && ITER_METHODS.contains(&ctx.text(c + 2))
            && ctx.text(c + 3) == "("
            && lines_hit.insert(ctx.line(c))
        {
            ctx.push(out, "map-iter-order", c);
        }
        // for <pat> in <expr mentioning a map name> {
        if ctx.is_ident(c, "for") && ctx.text(c + 1) != "<" {
            let mut in_at = None;
            for step in 1..=40usize {
                match ctx.text(c + step) {
                    "" | "{" => break,
                    "in" if ctx.kind(c + step) == Some(Kind::Ident) => {
                        in_at = Some(c + step);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(i0) = in_at else { continue };
            for step in 1..=40usize {
                let d = i0 + step;
                match ctx.text(d) {
                    "" | "{" => break,
                    t if ctx.kind(d) == Some(Kind::Ident) && names.contains(t) => {
                        if lines_hit.insert(ctx.line(c)) {
                            ctx.push(out, "map-iter-order", c);
                        }
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` anywhere in the file:
/// `name: …HashMap<…>` (fields, params, typed lets — scanned to the first
/// terminator at angle depth zero) and `name = …HashMap::…` initializers.
fn collect_map_names(ctx: &Ctx<'_, '_>) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for c in 0..ctx.code.len() {
        if ctx.kind(c) != Some(Kind::Ident) {
            continue;
        }
        let is_map_ident = |d: usize| matches!(ctx.text(d), "HashMap" | "HashSet");
        if ctx.text(c + 1) == ":" && type_window_mentions(ctx, c + 2, &["HashMap", "HashSet"]) {
            names.insert(ctx.text(c).to_string());
        } else if ctx.text(c + 1) == "=" {
            // Walk a path (`std :: collections :: HashMap :: new`) only.
            let mut d = c + 2;
            while ctx.kind(d) == Some(Kind::Ident) || ctx.text(d) == "::" {
                if is_map_ident(d) && ctx.text(d + 1) == "::" {
                    names.insert(ctx.text(c).to_string());
                    break;
                }
                d += 1;
                if d > c + 10 {
                    break;
                }
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";
    const BIN: &str = "crates/demo/src/main.rs";

    fn hits(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        let scan = FileScan::new(path, src);
        scan_file(&scan)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = hits(path, src).into_iter().map(|(r, _)| r).collect();
        rules.dedup();
        rules
    }

    // ---- legacy rules, re-implemented on tokens --------------------------

    #[test]
    fn unwrap_flagged_in_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(hits(LIB, src), vec![("no-unwrap", 1)]);
        assert_eq!(
            rules_hit(LIB, "fn f(x: Option<u32>) -> u32 { x.expect(\"boom\") }\n"),
            vec!["no-unwrap"]
        );
    }

    #[test]
    fn unwrap_allowed_in_tests_binaries_and_cfg_test() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(hits("crates/demo/tests/it.rs", src).is_empty());
        assert!(hits(BIN, src).is_empty());
        let lib = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use super::*;\n\
                   #[test]\n\
                   fn t() { ok(); Some(3).unwrap(); panic!(\"fine here\") }\n\
                   }\n";
        assert!(hits(LIB, lib).is_empty());
    }

    #[test]
    fn code_after_cfg_test_region_is_scanned_again() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { Some(1).unwrap(); }\n\
                   }\n\
                   fn later(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(hits(LIB, src), vec![("no-unwrap", 5)]);
    }

    #[test]
    fn panic_flagged_only_as_macro() {
        assert_eq!(
            rules_hit(LIB, "fn f() { panic!(\"no\") }\n"),
            vec!["no-panic"]
        );
        // Substrings of identifiers are distinct tokens and don't count.
        assert!(hits(LIB, "fn f() { my_should_panic_helper() }\n").is_empty());
        // `#[should_panic]` never fires: `should_panic` is one identifier.
        assert!(hits(LIB, "fn f() { std::panic::catch_unwind(|| ()); }\n").is_empty());
    }

    #[test]
    fn needles_inside_strings_and_comments_ignored() {
        let src = "const HELP: &str = \"call .unwrap() or panic!\";\n\
                   // the old code used row as u32 here\n\
                   /* block: cycle as u16 */\n";
        assert!(hits(LIB, src).is_empty());
        // …including raw strings, which defeat line-based stripping.
        let raw = "const R: &str = r#\"x.unwrap() \"quoted\" panic!\"#;\n";
        assert!(hits(LIB, raw).is_empty());
    }

    #[test]
    fn truncating_cast_on_cycle_line_flagged() {
        assert_eq!(
            hits(LIB, "fn f(cycle: u64) -> u32 { cycle as u32 }\n"),
            vec![("cast-truncation", 1)]
        );
        // Widening casts and off-domain lines pass.
        assert!(hits(LIB, "fn f(row: u32) -> u64 { row as u64 }\n").is_empty());
        assert!(hits(LIB, "fn g(flags: u64) -> u8 { flags as u8 }\n").is_empty());
        // Binaries are in scope for data-integrity rules.
        assert_eq!(
            rules_hit(BIN, "fn f(addr: u64) -> u16 { addr as u16 }\n"),
            vec!["cast-truncation"]
        );
    }

    #[test]
    fn float_eq_on_timing_values_flagged() {
        assert_eq!(
            rules_hit(LIB, "fn f(a_ns: f64, b: f64) -> bool { a_ns == b }\n"),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(t: &T) -> bool { t.trcd_ns != 11.0 }\n"),
            vec!["float-eq"]
        );
        assert!(hits(LIB, "fn f(a_ns: f64) -> bool { a_ns >= 1.0 }\n").is_empty());
        assert!(hits(LIB, "fn f(n: u64) -> bool { n == 3 }\n").is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_telemetry() {
        let src = "fn f() { let t = std::time::Instant::now(); drop(t); }\n";
        assert_eq!(rules_hit(LIB, src), vec!["wall-clock"]);
        assert_eq!(rules_hit(BIN, src), vec!["wall-clock"]);
        let sys = "fn f() { let t = std::time::SystemTime::now(); drop(t); }\n";
        assert_eq!(rules_hit(LIB, sys), vec!["wall-clock"]);
        assert!(hits("crates/telemetry/src/metrics.rs", src).is_empty());
        assert!(hits("crates/demo/tests/it.rs", src).is_empty());
    }

    // ---- determinism / concurrency pass ---------------------------------

    #[test]
    fn map_iteration_flagged_for_typed_fields_and_lets() {
        let src = "use std::collections::HashMap;\n\
                   struct S { index: HashMap<u64, u64> }\n\
                   impl S {\n\
                       fn dump(&self) -> Vec<u64> { self.index.keys().copied().collect() }\n\
                   }\n";
        assert_eq!(hits(LIB, src), vec![("map-iter-order", 4)]);
        let set = "use std::collections::HashSet;\n\
                   fn f(live: &HashSet<u64>) -> u64 {\n\
                       let mut n = 0;\n\
                       for page in live { n += page; }\n\
                       n\n\
                   }\n";
        assert_eq!(hits(LIB, set), vec![("map-iter-order", 4)]);
    }

    #[test]
    fn map_iteration_flagged_for_initializers_and_drain() {
        let src = "fn f() {\n\
                       let mut seen = std::collections::HashMap::new();\n\
                       seen.insert(1u64, 2u64);\n\
                       for (k, v) in seen { let _ = (k, v); }\n\
                   }\n";
        assert_eq!(hits(LIB, src), vec![("map-iter-order", 4)]);
        let drain = "struct T { buffer: std::collections::HashSet<u64> }\n\
                     impl T {\n\
                         fn take(&mut self) -> Vec<u64> { self.buffer.drain().collect() }\n\
                     }\n";
        assert_eq!(hits(LIB, drain), vec![("map-iter-order", 3)]);
    }

    #[test]
    fn map_point_lookups_pass() {
        let src = "struct S { memo: std::collections::HashMap<u64, bool> }\n\
                   impl S {\n\
                       fn get(&self, k: u64) -> Option<bool> { self.memo.get(&k).copied() }\n\
                       fn put(&mut self, k: u64) { self.memo.insert(k, true); }\n\
                       fn n(&self) -> usize { self.memo.len() }\n\
                   }\n";
        assert!(hits(LIB, src).is_empty());
        // Iterating a Vec parameter next to a map parameter is fine: the
        // type window stops at the comma.
        let vecs = "use std::collections::HashMap;\n\
                    fn f(pages: Vec<u64>, memo: HashMap<u64, u64>) -> u64 {\n\
                        let mut n = memo.len() as u64;\n\
                        for p in pages { n += p; }\n\
                        n\n\
                    }\n";
        assert!(hits(LIB, vecs).is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_par() {
        let src = "fn f() { std::thread::spawn(|| ()); }\n";
        assert_eq!(rules_hit(LIB, src), vec!["thread-outside-par"]);
        let scope = "fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        assert_eq!(rules_hit(LIB, scope), vec!["thread-outside-par"]);
        assert!(hits("crates/memutil/src/par.rs", src).is_empty());
    }

    #[test]
    fn mutable_statics_flagged_outside_registries() {
        let src =
            "static HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);\n";
        assert_eq!(rules_hit(LIB, src), vec!["global-mut-state"]);
        let lock = "static CACHE: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();\n";
        assert_eq!(rules_hit(LIB, lock), vec!["global-mut-state"]);
        // Immutable statics are fine.
        assert!(hits(LIB, "static NAME: &str = \"memcon\";\n").is_empty());
        assert!(hits(LIB, "static EDGES: [u64; 3] = [1, 2, 3];\n").is_empty());
        // `&'static` lifetimes never look like the keyword.
        assert!(hits(LIB, "fn f(x: &'static str) -> &'static str { x }\n").is_empty());
        // thread-local statics are per-thread, not global.
        let tl =
            "thread_local! { static SCRATCH: RefCell<Vec<u64>> = RefCell::new(Vec::new()); }\n";
        assert!(hits(LIB, tl).is_empty());
        // The sanctioned registries are exempt.
        assert!(hits("crates/telemetry/src/registry.rs", src).is_empty());
        assert!(hits("crates/faultinject/src/lib.rs", src).is_empty());
    }

    #[test]
    fn env_reads_flagged_in_library_code_only() {
        let src = "fn f() -> Option<String> { std::env::var(\"MEMCON_X\").ok() }\n";
        assert_eq!(rules_hit(LIB, src), vec!["env-read"]);
        // Binaries resolve arguments/environment by design.
        assert!(hits(BIN, src).is_empty());
        assert!(hits("crates/memutil/src/par.rs", src).is_empty());
        // `env!` (compile-time) is not an env read.
        assert!(hits(
            LIB,
            "fn f() -> &'static str { env!(\"CARGO_MANIFEST_DIR\") }\n"
        )
        .is_empty());
    }

    // ---- allow markers ---------------------------------------------------

    #[test]
    fn inline_allow_marker_suppresses() {
        let src: String = [
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // memlint:",
            " allow\n",
        ]
        .concat();
        assert!(hits(LIB, &src).is_empty());
    }

    #[test]
    fn allow_marker_on_preceding_comment_line_suppresses() {
        let marker: String = ["// memlint:", " allow (deliberate)\n"].concat();
        let src = format!("{marker}fn f(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
        assert!(hits(LIB, &src).is_empty());
        // The marker covers exactly one line, not everything after it.
        let src2 = format!(
            "{marker}fn f(x: Option<u32>) -> u32 {{ x.unwrap() }}\nfn g(x: Option<u32>) -> u32 {{ x.unwrap() }}\n"
        );
        assert_eq!(hits(LIB, &src2), vec![("no-unwrap", 3)]);
    }

    #[test]
    fn rule_scoped_allow_marker_suppresses_only_named_rules() {
        let marker: String = ["// memlint:", " allow(map-iter-order): sorted below\n"].concat();
        let src = format!(
            "use std::collections::HashSet;\n\
             struct T {{ buffer: HashSet<u64> }}\n\
             impl T {{\n\
                 fn take(&mut self) -> Vec<u64> {{\n\
                     {marker}\
                     let mut v: Vec<u64> = self.buffer.drain().collect();\n\
                     v.sort_unstable();\n\
                     v\n\
                 }}\n\
             }}\n"
        );
        assert!(hits(LIB, &src).is_empty());
        // A different rule on the same line is NOT suppressed.
        let marker2: String = ["// memlint:", " allow(no-panic)\n"].concat();
        let src2 = format!("{marker2}fn f(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
        assert_eq!(hits(LIB, &src2), vec![("no-unwrap", 2)]);
    }

    #[test]
    fn lifetimes_survive_token_analysis() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        assert!(hits(LIB, src).is_empty());
        let src2 = "fn g() -> char { '\\'' }\n";
        assert!(hits(LIB, src2).is_empty());
    }
}
