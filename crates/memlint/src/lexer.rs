//! A hand-written Rust lexer, sufficient for lint-grade analysis.
//!
//! The token stream is *lossless about placement* (every token knows its
//! byte offset and 1-based line) and *total*: any byte sequence lexes
//! without panicking, unknown bytes degrade to single-character
//! [`Kind::Punct`] tokens, and unterminated literals or comments extend to
//! the end of input. The cases that defeat line-oriented scanners are
//! handled structurally:
//!
//! * raw strings `r"…"` / `r#"…"#` (any hash depth) and their byte
//!   variants `br#"…"#`,
//! * nested block comments `/* /* */ */` (and doc variants `/** … */`),
//! * `'a` lifetimes vs `'a'` char literals (including `'\''`, `'\u{…}'`),
//! * line doc comments `///` / `//!`,
//! * raw identifiers `r#match`,
//! * multi-character operators (`::`, `==`, `!=`, `..=`, `->`, …) lexed
//!   as single tokens by maximal munch.
//!
//! Rules never look inside [`Kind::Str`] or comment tokens, which kills
//! the false-positive class the old substring scanner papered over with
//! marker comments.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`). Text includes the leading quote.
    Lifetime,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Numeric literal (`42`, `0xFF`, `1.5e-3`, `3u64`).
    Num,
    /// `//`-style comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` comment (possibly nested), including `/** … */`.
    BlockComment,
    /// Operator or delimiter (`::` and friends are single tokens).
    Punct,
}

/// One token: classification, exact source text, byte offset, 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'s> {
    /// Classification.
    pub kind: Kind,
    /// Exact source slice, quotes and sigils included.
    pub text: &'s str,
    /// Byte offset of the token start.
    pub start: usize,
    /// 1-based line of the token start.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this is a comment of either flavor.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }

    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    #[must_use]
    pub fn is_doc(&self) -> bool {
        match self.kind {
            Kind::LineComment => {
                (self.text.starts_with("///") && !self.text.starts_with("////"))
                    || self.text.starts_with("//!")
            }
            Kind::BlockComment => {
                (self.text.starts_with("/**") && !self.text.starts_with("/***"))
                    || self.text.starts_with("/*!")
            }
            _ => false,
        }
    }

    /// The unescaped value of a string literal, when it can be recovered
    /// trivially (no escape sequences). Cross-artifact checks only care
    /// about plain names, so literals containing backslashes yield `None`.
    #[must_use]
    pub fn str_value(&self) -> Option<&str> {
        if self.kind != Kind::Str {
            return None;
        }
        let t = self.text;
        // Raw strings: r/b sigils, then hashes, then the quoted body.
        let after_sigil = t.trim_start_matches(['r', 'b']);
        if after_sigil.len() != t.len() {
            let hashes = after_sigil.len() - after_sigil.trim_start_matches('#').len();
            let body = &after_sigil[hashes..];
            let open = body.strip_prefix('"')?;
            let close = format!("\"{}", "#".repeat(hashes));
            return open.strip_suffix(close.as_str());
        }
        let body = t.strip_prefix('"')?.strip_suffix('"')?;
        if body.contains('\\') {
            None
        } else {
            Some(body)
        }
    }
}

/// Multi-character operators, longest first (maximal munch).
const OPERATORS: [&str; 25] = [
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "=",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a complete token stream. Total: never fails, never
/// panics, and the concatenation of token texts plus skipped whitespace
/// reproduces the input exactly.
#[must_use]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
    tokens: Vec<Token<'s>>,
}

impl<'s> Lexer<'s> {
    fn rest(&self) -> &'s str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.rest().chars();
        it.next();
        it.next()
    }

    /// Advances by `n` bytes, counting newlines.
    fn advance(&mut self, n: usize) {
        let skipped = &self.src[self.pos..self.pos + n];
        self.line += skipped.bytes().filter(|&b| b == b'\n').count() as u32;
        self.pos += n;
    }

    fn emit(&mut self, kind: Kind, start: usize, start_line: u32) {
        self.tokens.push(Token {
            kind,
            text: &self.src[start..self.pos],
            start,
            line: start_line,
        });
    }

    fn run(mut self) -> Vec<Token<'s>> {
        while let Some(c) = self.peek() {
            let start = self.pos;
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.advance(c.len_utf8());
                }
                '/' if self.peek2() == Some('/') => {
                    let len = self.rest().find('\n').unwrap_or(self.rest().len());
                    self.advance(len);
                    self.emit(Kind::LineComment, start, line);
                }
                '/' if self.peek2() == Some('*') => {
                    self.block_comment();
                    self.emit(Kind::BlockComment, start, line);
                }
                '"' => {
                    self.cooked_string();
                    self.emit(Kind::Str, start, line);
                }
                '\'' => {
                    let kind = self.quote();
                    self.emit(kind, start, line);
                }
                'r' | 'b' if self.raw_or_byte_literal(start, line) => {}
                _ if is_ident_start(c) => {
                    self.ident_run();
                    self.emit(Kind::Ident, start, line);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.emit(Kind::Num, start, line);
                }
                _ => {
                    let rest = self.rest();
                    let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                    match op {
                        Some(op) => self.advance(op.len()),
                        None => self.advance(c.len_utf8()),
                    }
                    self.emit(Kind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    /// Consumes a (possibly nested) block comment, `/*` already peeked.
    fn block_comment(&mut self) {
        self.advance(2);
        let mut depth = 1usize;
        while depth > 0 {
            let rest = self.rest();
            if rest.is_empty() {
                return; // unterminated: extends to EOF
            }
            if rest.starts_with("/*") {
                depth += 1;
                self.advance(2);
            } else if rest.starts_with("*/") {
                depth -= 1;
                self.advance(2);
            } else {
                let c = rest.chars().next().map_or(1, char::len_utf8);
                self.advance(c);
            }
        }
    }

    /// Consumes a `"…"` string, honoring backslash escapes; `"` peeked.
    fn cooked_string(&mut self) {
        self.advance(1);
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.advance(1);
                    if let Some(e) = self.peek() {
                        self.advance(e.len_utf8());
                    }
                }
                '"' => {
                    self.advance(1);
                    return;
                }
                _ => self.advance(c.len_utf8()),
            }
        }
    }

    /// Disambiguates `'` into a char literal or a lifetime; `'` peeked.
    fn quote(&mut self) -> Kind {
        self.advance(1);
        let rest = self.rest();
        let mut chars = rest.char_indices();
        match chars.next() {
            // Escaped char literal: '\n', '\'', '\u{1F600}'.
            Some((_, '\\')) => {
                self.advance(1);
                if let Some(e) = self.peek() {
                    self.advance(e.len_utf8());
                }
                // Scan to the closing quote (covers \u{…}); stop at
                // newline/EOF for malformed input.
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        self.advance(1);
                        break;
                    }
                    if c == '\n' {
                        break;
                    }
                    self.advance(c.len_utf8());
                }
                Kind::Char
            }
            // Exactly one char then a closing quote: a char literal,
            // even when that char is ident-like ('a', '5', '_').
            Some((_, c)) if c != '\'' && chars.next().map(|(_, n)| n) == Some('\'') => {
                self.advance(c.len_utf8() + 1);
                Kind::Char
            }
            // Ident run not followed by a quote: a lifetime.
            Some((_, c)) if is_ident_start(c) => {
                self.ident_run();
                Kind::Lifetime
            }
            // Stray quote (malformed source): degrade to punctuation.
            _ => Kind::Punct,
        }
    }

    /// Handles the `r`/`b` sigil family: raw strings `r"…"`/`r#"…"#`, byte
    /// strings `b"…"`/`br#"…"#`, byte chars `b'…'`, and raw identifiers
    /// `r#ident`. Returns `false` when the sigil is just the start of a
    /// plain identifier (caller lexes it).
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let rest = self.rest();
        // Order matters: longest sigil first.
        for sigil in ["br", "rb", "r", "b"] {
            let Some(after) = rest.strip_prefix(sigil) else {
                continue;
            };
            let hashes = after.len() - after.trim_start_matches('#').len();
            let body = &after[hashes..];
            if body.starts_with('"') {
                self.advance(sigil.len() + hashes);
                if hashes == 0 && sigil == "b" {
                    self.cooked_string(); // b"…" honors escapes
                } else {
                    self.raw_string_body(hashes);
                }
                self.emit(Kind::Str, start, line);
                return true;
            }
            if sigil == "b" && hashes == 0 && body.starts_with('\'') {
                self.advance(1);
                let _ = self.quote(); // b'x' / b'\n'
                self.emit(Kind::Char, start, line);
                return true;
            }
            if sigil == "r" && hashes == 1 && body.chars().next().is_some_and(is_ident_start) {
                self.advance(2); // r# raw identifier
                self.ident_run();
                self.emit(Kind::Ident, start, line);
                return true;
            }
        }
        false
    }

    /// Consumes a raw string body starting at the opening `"`, terminated
    /// by `"` followed by `hashes` hash characters.
    fn raw_string_body(&mut self, hashes: usize) {
        self.advance(1);
        let closer: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        match self.rest().find(closer.as_str()) {
            Some(i) => self.advance(i + closer.len()),
            None => self.advance(self.rest().len()), // unterminated
        }
    }

    fn ident_run(&mut self) {
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.advance(c.len_utf8());
            } else {
                break;
            }
        }
    }

    /// Consumes a numeric literal: integer/float with `_` separators,
    /// radix prefixes, exponents, and type suffixes. A trailing `.` is only
    /// consumed when followed by a digit, so `0..10` stays a range.
    fn number(&mut self) {
        let radix_prefixed = self.rest().starts_with("0x")
            || self.rest().starts_with("0b")
            || self.rest().starts_with("0o")
            || self.rest().starts_with("0X");
        self.ident_run(); // digits, hex digits, suffixes, `_`
        if !radix_prefixed {
            // Fraction: `.` followed by a digit.
            if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                self.advance(1);
                self.ident_run();
            }
            // Exponent sign: `1e-3` — the `e` was consumed by the ident
            // run; a sign right after an `e`/`E` tail continues the number.
            let ends_e = self.src[..self.pos].ends_with(['e', 'E']);
            if ends_e
                && matches!(self.peek(), Some('+' | '-'))
                && self.peek2().is_some_and(|c| c.is_ascii_digit())
            {
                self.advance(1);
                self.ident_run();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        assert_eq!(
            kinds("fn f(x: u32) -> u32 { x }"),
            vec![
                (Kind::Ident, "fn"),
                (Kind::Ident, "f"),
                (Kind::Punct, "("),
                (Kind::Ident, "x"),
                (Kind::Punct, ":"),
                (Kind::Ident, "u32"),
                (Kind::Punct, ")"),
                (Kind::Punct, "->"),
                (Kind::Ident, "u32"),
                (Kind::Punct, "{"),
                (Kind::Ident, "x"),
                (Kind::Punct, "}"),
            ]
        );
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        assert_eq!(
            kinds("a::b == c != d ..= e .. f"),
            vec![
                (Kind::Ident, "a"),
                (Kind::Punct, "::"),
                (Kind::Ident, "b"),
                (Kind::Punct, "=="),
                (Kind::Ident, "c"),
                (Kind::Punct, "!="),
                (Kind::Ident, "d"),
                (Kind::Punct, "..="),
                (Kind::Ident, "e"),
                (Kind::Punct, ".."),
                (Kind::Ident, "f"),
            ]
        );
    }

    #[test]
    fn raw_strings_with_hash_depths() {
        assert_eq!(
            kinds(r####"let s = r#"panic! "quoted" .unwrap()"#;"####),
            vec![
                (Kind::Ident, "let"),
                (Kind::Ident, "s"),
                (Kind::Punct, "="),
                (Kind::Str, r####"r#"panic! "quoted" .unwrap()"#"####),
                (Kind::Punct, ";"),
            ]
        );
        // Hash-depth mismatch keeps scanning: r##"…"# …"## is one token.
        let src = r####"r##"inner "# quote"## x"####;
        let toks = kinds(src);
        assert_eq!(toks[0], (Kind::Str, r####"r##"inner "# quote"##"####));
        assert_eq!(toks[1], (Kind::Ident, "x"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(kinds(r#"b"ab\"c""#)[0].0, Kind::Str);
        assert_eq!(kinds(r##"br#"raw"#"##)[0].0, Kind::Str);
        assert_eq!(kinds(r"b'\n'")[0].0, Kind::Char);
        assert_eq!(kinds("b'x'")[0].0, Kind::Char);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (Kind::Ident, "a"));
        assert_eq!(toks[1].0, Kind::BlockComment);
        assert_eq!(toks[2], (Kind::Ident, "b"));
    }

    #[test]
    fn unterminated_block_comment_extends_to_eof() {
        let toks = kinds("a /* no close");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (Kind::BlockComment, "/* no close"));
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            kinds("fn f<'a>(x: &'a str) -> char { 'a' }")
                .into_iter()
                .filter(|(k, _)| matches!(k, Kind::Lifetime | Kind::Char))
                .collect::<Vec<_>>(),
            vec![
                (Kind::Lifetime, "'a"),
                (Kind::Lifetime, "'a"),
                (Kind::Char, "'a'"),
            ]
        );
        assert_eq!(kinds(r"'\''")[0], (Kind::Char, r"'\''"));
        assert_eq!(kinds(r"'\u{1F600}'")[0], (Kind::Char, r"'\u{1F600}'"));
        assert_eq!(kinds("&'static str")[1], (Kind::Lifetime, "'static"));
        assert_eq!(kinds("'_")[0], (Kind::Lifetime, "'_"));
    }

    #[test]
    fn doc_comments_detected() {
        let toks = lex("/// outer doc\n//! inner doc\n// plain\n/** block doc */\n/* plain */");
        let docs: Vec<bool> = toks.iter().map(Token::is_doc).collect();
        assert_eq!(docs, vec![true, true, false, true, false]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1.5e-3 0xFF_u64 0b1010 42usize 1..10 3."),
            vec![
                (Kind::Num, "1.5e-3"),
                (Kind::Num, "0xFF_u64"),
                (Kind::Num, "0b1010"),
                (Kind::Num, "42usize"),
                (Kind::Num, "1"),
                (Kind::Punct, ".."),
                (Kind::Num, "10"),
                (Kind::Num, "3"),
                (Kind::Punct, "."),
            ]
        );
        // Hex literal ending in `e` must not eat a following minus.
        assert_eq!(
            kinds("0x3e-1"),
            vec![(Kind::Num, "0x3e"), (Kind::Punct, "-"), (Kind::Num, "1"),]
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#match")[0], (Kind::Ident, "r#match"));
        // …while r#"…"# is a string.
        assert_eq!(kinds(r###"r#"s"#"###)[0].0, Kind::Str);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\nb /* c1\nc2 */ d";
        let toks = lex(src);
        let lines: Vec<(&str, u32)> = toks.iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(lines[0], ("a", 1));
        assert_eq!(lines[1], ("\"two\nline string\"", 2));
        assert_eq!(lines[2], ("b", 4));
        assert_eq!(lines[4], ("d", 5));
    }

    #[test]
    fn str_value_recovers_plain_literals() {
        assert_eq!(
            lex(r#""memcon.pril.writes""#)[0].str_value(),
            Some("memcon.pril.writes")
        );
        assert_eq!(lex(r##"r#"raw.name"#"##)[0].str_value(), Some("raw.name"));
        // Escapes are not metric names; recovery declines.
        assert_eq!(lex(r#""a\nb""#)[0].str_value(), None);
    }

    #[test]
    fn totality_token_texts_tile_the_input() {
        let src = "fn f() { let s = \"x\"; /* c */ 'a' }";
        let toks = lex(src);
        let mut covered = 0;
        for t in &toks {
            assert!(t.start >= covered, "tokens overlap");
            assert!(src[covered..t.start].chars().all(char::is_whitespace));
            covered = t.start + t.text.len();
        }
        assert!(src[covered..].chars().all(char::is_whitespace));
    }
}
