//! Cross-artifact consistency checks — facts no single-file lexer can
//! verify, spanning code, the telemetry golden file, and the fault-site
//! registry:
//!
//! * **`telemetry-name`** — every metric name used in library/binary code
//!   must appear in `TELEMETRY_expected.json` (else the obs gate can't see
//!   it), and every golden key must still be emitted by code (else the
//!   golden is stale). Golden keys span counters, histograms, and the
//!   gauge names of the deterministic time-series points. Names only
//!   observed under rare conditions — absent from the reference run by
//!   design — are listed in [`KNOWN_CONDITIONAL_METRICS`], which is itself
//!   checked for staleness.
//! * **`fault-site`** — the `fault.<site>` keys in the golden file and the
//!   site names returned by `faultinject`'s `Site::name` must match
//!   exactly, both directions.
//! * **`schema-once`** — each `memcon-<kind>/vN` schema string must occur
//!   exactly once in non-test code (its one defining site); a second
//!   occurrence is a copy that can drift.

use crate::lexer::Kind;
use crate::rules::Violation;
use crate::source::{FileClass, FileScan, ItemKind};
use memutil::json::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Metric names legitimately used in code but absent from the reference
/// telemetry run (and therefore from `TELEMETRY_expected.json`):
///
/// * `dram.charge.image_builds` — counted only when a charge image is
///   (re)built; the reference workload hits the per-chip cache.
/// * `memcon.recovery.backoff_quanta` — a histogram observed only when a
///   recovery backoff actually occurs; the reference run has none.
/// * `memcon.oracle.memo_hits` / `memo_misses` — flushed only when the
///   test engine's oracle memo is enabled (`memo_counters()` is `Some`),
///   which the reference configuration leaves off.
/// * `fleet.step.latency_us` — a `Class::Timing` histogram (wall-clock
///   step latencies); timing metrics never appear in the golden file's
///   deterministic section by design.
pub const KNOWN_CONDITIONAL_METRICS: [&str; 5] = [
    "dram.charge.image_builds",
    "memcon.recovery.backoff_quanta",
    "memcon.oracle.memo_hits",
    "memcon.oracle.memo_misses",
    "fleet.step.latency_us",
];

/// The file owning the fault-site registry (`Site::name`).
const FAULT_REGISTRY_FILE: &str = "crates/faultinject/src/lib.rs";

/// Path reported for findings anchored in the golden file itself.
const GOLDEN_PATH: &str = "TELEMETRY_expected.json";

/// One string literal occurrence in non-test code.
struct Lit {
    value: String,
    path: String,
    line: u32,
    excerpt: String,
}

/// Whether `s` is shaped like a telemetry metric name:
/// 3+ dot-separated segments, each `[a-z][a-z0-9_]*`.
fn metric_shaped(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 3
        && segs.iter().all(|seg| {
            let mut chars = seg.chars();
            chars.next().is_some_and(|c| c.is_ascii_lowercase())
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Whether `s` is shaped like a fault-site name:
/// `<subsystem>.<event>` with exactly two `[a-z][a-z0-9_]*` segments.
fn site_shaped(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() == 2
        && segs.iter().all(|seg| {
            let mut chars = seg.chars();
            chars.next().is_some_and(|c| c.is_ascii_lowercase())
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Whether `s` is shaped like a schema tag: `memcon-<kind>/vN`.
fn schema_shaped(s: &str) -> bool {
    let Some((name, version)) = s.rsplit_once("/v") else {
        return false;
    };
    let Some(kind) = name.strip_prefix("memcon-") else {
        return false;
    };
    !kind.is_empty()
        && kind
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && !version.is_empty()
        && version.chars().all(|c| c.is_ascii_digit())
}

/// Collects interesting string literals from one analyzed file.
fn collect_literals(scan: &FileScan<'_>, pred: fn(&str) -> bool, out: &mut Vec<Lit>) {
    for (_, t) in scan.code_tokens() {
        if t.kind != Kind::Str {
            continue;
        }
        let Some(value) = t.str_value() else { continue };
        if pred(value) {
            out.push(Lit {
                value: value.to_string(),
                path: scan.path.clone(),
                line: t.line,
                excerpt: scan.line_text(t.line).to_string(),
            });
        }
    }
}

/// Extracts the metric-name keys from the golden telemetry report:
/// `deterministic.counters`, `deterministic.histograms`, and the gauge
/// names of every `deterministic.timeseries` sample point (the live
/// observability plane's gauges are golden-pinned series names too).
fn golden_keys(golden: &Json) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    if let Some(Json::Obj(sections)) = golden.get("deterministic") {
        for (section, value) in sections {
            match (section.as_str(), value) {
                ("counters" | "histograms", Json::Obj(fields)) => {
                    keys.extend(fields.iter().map(|(k, _)| k.clone()));
                }
                ("timeseries", ts) => {
                    let Some(Json::Arr(points)) = ts.get("points") else {
                        continue;
                    };
                    for point in points {
                        if let Some(Json::Obj(gauges)) = point.get("gauges") {
                            keys.extend(gauges.iter().map(|(k, _)| k.clone()));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    keys
}

/// Extracts the fault-site registry: the 2-segment string literals inside
/// `fn name` in the faultinject crate, via the item model.
fn registry_sites(scans: &[FileScan<'_>]) -> (BTreeSet<String>, Option<(String, u32)>) {
    let Some(scan) = scans.iter().find(|s| s.path == FAULT_REGISTRY_FILE) else {
        return (BTreeSet::new(), None);
    };
    let Some(item) = scan
        .items
        .iter()
        .find(|it| it.kind == ItemKind::Fn && it.name == "name")
    else {
        return (BTreeSet::new(), None);
    };
    let sites = item
        .body
        .clone()
        .filter_map(|i| scan.tokens[i].str_value())
        .filter(|v| site_shaped(v))
        .map(str::to_string)
        .collect();
    (sites, Some((scan.path.clone(), item.line)))
}

/// Runs every cross-artifact check. `golden` is the text of
/// `TELEMETRY_expected.json` when present; without it the telemetry and
/// fault-site checks are skipped (the schema-once check still runs).
#[must_use]
pub fn check(scans: &[FileScan<'_>], golden: Option<&str>) -> Vec<Violation> {
    let mut out = Vec::new();
    let code_scans: Vec<&FileScan<'_>> = scans
        .iter()
        .filter(|s| s.class != FileClass::Test)
        .collect();

    // -- schema-once -------------------------------------------------------
    let mut schema_lits = Vec::new();
    for scan in &code_scans {
        collect_literals(scan, schema_shaped, &mut schema_lits);
    }
    let mut by_value: BTreeMap<&str, Vec<&Lit>> = BTreeMap::new();
    for lit in &schema_lits {
        by_value.entry(&lit.value).or_default().push(lit);
    }
    for (value, mut sites) in by_value {
        if sites.len() <= 1 {
            continue;
        }
        sites.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        for dup in &sites[1..] {
            out.push(Violation {
                rule: "schema-once",
                path: dup.path.clone(),
                line: dup.line,
                excerpt: format!(
                    "{} — schema string {value:?} already defined at {}:{}",
                    dup.excerpt, sites[0].path, sites[0].line
                ),
            });
        }
    }

    let Some(golden_text) = golden else {
        return finish(scans, out);
    };
    let Ok(golden_json) = Json::parse(golden_text) else {
        out.push(Violation {
            rule: "telemetry-name",
            path: GOLDEN_PATH.to_string(),
            line: 1,
            excerpt: "golden telemetry report is not valid JSON".to_string(),
        });
        return finish(scans, out);
    };
    let golden_names = golden_keys(&golden_json);

    // -- fault-site --------------------------------------------------------
    let (sites, registry_at) = registry_sites(scans);
    if let Some((reg_path, reg_line)) = &registry_at {
        let golden_sites: BTreeSet<&str> = golden_names
            .iter()
            .filter_map(|k| k.strip_prefix("fault."))
            .collect();
        for site in &sites {
            if !golden_sites.contains(site.as_str()) {
                out.push(Violation {
                    rule: "fault-site",
                    path: reg_path.clone(),
                    line: *reg_line,
                    excerpt: format!(
                        "site {site:?} is registered but fault.{site} is missing from {GOLDEN_PATH}"
                    ),
                });
            }
        }
        for gsite in golden_sites {
            if !sites.contains(gsite) {
                out.push(Violation {
                    rule: "fault-site",
                    path: GOLDEN_PATH.to_string(),
                    line: 1,
                    excerpt: format!(
                        "fault.{gsite} is in the golden report but {gsite:?} is not a registered site"
                    ),
                });
            }
        }
    }

    // -- telemetry-name ----------------------------------------------------
    // memlint's own sources are excluded: the names in
    // KNOWN_CONDITIONAL_METRICS would otherwise count as "uses" and
    // satisfy their own staleness check.
    let mut metric_lits = Vec::new();
    for scan in &code_scans {
        if scan.path.starts_with("crates/memlint/") {
            continue;
        }
        collect_literals(scan, metric_shaped, &mut metric_lits);
    }
    let used: BTreeSet<&str> = metric_lits.iter().map(|l| l.value.as_str()).collect();
    for lit in &metric_lits {
        let known = golden_names.contains(&lit.value)
            || KNOWN_CONDITIONAL_METRICS.contains(&lit.value.as_str())
            || lit
                .value
                .strip_prefix("fault.")
                .is_some_and(|s| sites.contains(s));
        if !known {
            out.push(Violation {
                rule: "telemetry-name",
                path: lit.path.clone(),
                line: lit.line,
                excerpt: format!(
                    "{} — metric {:?} is not in {GOLDEN_PATH}",
                    lit.excerpt, lit.value
                ),
            });
        }
    }
    for name in &golden_names {
        // fault.* keys are justified by the registry, checked above.
        if name.starts_with("fault.") {
            continue;
        }
        if !used.contains(name.as_str()) {
            out.push(Violation {
                rule: "telemetry-name",
                path: GOLDEN_PATH.to_string(),
                line: 1,
                excerpt: format!("golden metric {name:?} is never emitted by code (stale golden?)"),
            });
        }
    }
    for name in KNOWN_CONDITIONAL_METRICS {
        if !used.contains(name) {
            out.push(Violation {
                rule: "telemetry-name",
                path: "crates/memlint/src/artifact.rs".to_string(),
                line: 1,
                excerpt: format!(
                    "KNOWN_CONDITIONAL_METRICS lists {name:?} but no code uses it (stale allowlist)"
                ),
            });
        }
    }

    finish(scans, out)
}

/// Applies allow markers and sorts the findings.
fn finish(scans: &[FileScan<'_>], mut out: Vec<Violation>) -> Vec<Violation> {
    out.retain(|v| {
        scans
            .iter()
            .find(|s| s.path == v.path)
            .is_none_or(|s| !s.allowed(v.rule, v.line))
    });
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// The cross-artifact rule identifiers, in report order.
pub const ARTIFACT_RULES: [&str; 3] = ["telemetry-name", "fault-site", "schema-once"];

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_of<'s>(path: &str, src: &'s str) -> FileScan<'s> {
        FileScan::new(path, src)
    }

    const GOLDEN: &str = r#"{
        "schema": "memcon-telemetry/v1",
        "deterministic": {
            "counters": {
                "demo.core.reads": {"v": 1},
                "fault.demo.glitch": {"v": 2}
            },
            "histograms": {
                "demo.core.latency": {"n": 3}
            }
        }
    }"#;

    const REGISTRY: &str = "pub enum Site { Glitch }\n\
         impl Site {\n\
             pub fn name(self) -> &'static str {\n\
                 match self { Site::Glitch => \"demo.glitch\" }\n\
             }\n\
         }\n";

    /// A fixture file exercising every conditional metric, so the
    /// allowlist staleness check stays quiet in unrelated tests.
    fn cond_uses() -> String {
        let calls: String = KNOWN_CONDITIONAL_METRICS
            .iter()
            .map(|m| format!("count(\"{m}\", 1); "))
            .collect();
        format!("fn cond() {{ {calls}}}\n")
    }

    #[test]
    fn shapes() {
        assert!(metric_shaped("memcon.pril.writes"));
        assert!(metric_shaped("failure_model.eval.bank_failures"));
        assert!(!metric_shaped("two.segments"));
        assert!(!metric_shaped("1.2.3"));
        assert!(!metric_shaped("Has.Upper.case"));
        assert!(site_shaped("memsim.cmd_drop"));
        assert!(!site_shaped("three.part.name"));
        assert!(schema_shaped("memcon-faultplan/v1"));
        assert!(schema_shaped("memcon-memlint/v12"));
        assert!(!schema_shaped("memcon-faultplan/v"));
        assert!(!schema_shaped("other-thing/v1"));
        assert!(!schema_shaped("memcon-/v1"));
    }

    #[test]
    fn used_metric_in_golden_passes_unknown_fails() {
        let lib = "fn f() { telemetry::count(\"demo.core.reads\", 1); }\n";
        let bad = "fn g() { telemetry::count(\"demo.core.writes\", 1); }\n";
        let cond = cond_uses();
        let files = [
            scan_of("crates/demo/src/lib.rs", lib),
            scan_of("crates/demo/src/extra.rs", bad),
            scan_of("crates/faultinject/src/lib.rs", REGISTRY),
            scan_of(
                "crates/demo/src/hist.rs",
                "fn h() { telemetry::observe(\"demo.core.latency\", 1); }\n",
            ),
            scan_of("crates/demo/src/cond.rs", &cond),
        ];
        let v = check(&files, Some(GOLDEN));
        let names: Vec<&str> = v.iter().map(|v| v.rule).collect();
        assert_eq!(names, vec!["telemetry-name"]);
        assert!(
            v[0].excerpt.contains("demo.core.writes"),
            "{}",
            v[0].excerpt
        );
        assert_eq!(v[0].path, "crates/demo/src/extra.rs");
    }

    #[test]
    fn stale_golden_key_reported() {
        // Nothing emits demo.core.reads or demo.core.latency.
        let files = [scan_of("crates/faultinject/src/lib.rs", REGISTRY)];
        let v = check(&files, Some(GOLDEN));
        let stale: Vec<&Violation> = v
            .iter()
            .filter(|v| v.path == "TELEMETRY_expected.json" && v.rule == "telemetry-name")
            .collect();
        assert_eq!(stale.len(), 2, "{v:?}");
    }

    #[test]
    fn metric_names_in_test_code_ignored() {
        let lib = "#[cfg(test)]\nmod tests {\n fn t() { count(\"t.free.fake\", 1); }\n}\n";
        let cond = cond_uses();
        let files = [
            scan_of("crates/demo/src/lib.rs", lib),
            scan_of("crates/faultinject/src/lib.rs", REGISTRY),
            scan_of(
                "crates/demo/src/u.rs",
                "fn f() { count(\"demo.core.reads\", 1); observe(\"demo.core.latency\", 2); }\n",
            ),
            scan_of("crates/demo/src/cond.rs", &cond),
        ];
        assert!(check(&files, Some(GOLDEN)).is_empty());
    }

    #[test]
    fn timeseries_gauge_keys_count_as_golden_names() {
        // A gauge name that only exists in the golden's deterministic
        // time-series points must satisfy the rule in both directions:
        // code using it is covered, and code covering it keeps the golden
        // fresh.
        const TS_GOLDEN: &str = r#"{
            "schema": "memcon-telemetry/v1",
            "deterministic": {
                "counters": {"fault.demo.glitch": {"v": 1}},
                "timeseries": {
                    "points": [
                        {"tick": 1, "counters": {}, "gauges": {"demo.gauge.load": 5}}
                    ]
                }
            }
        }"#;
        let lib = "fn f() { telemetry::sample_point(1, &[(\"demo.gauge.load\", 5)]); }\n";
        let cond = cond_uses();
        let files = [
            scan_of("crates/demo/src/lib.rs", lib),
            scan_of("crates/faultinject/src/lib.rs", REGISTRY),
            scan_of("crates/demo/src/cond.rs", &cond),
        ];
        let v = check(&files, Some(TS_GOLDEN));
        assert!(v.is_empty(), "{v:?}");

        // Without the code use, the gauge key is stale golden data.
        let files = [
            scan_of("crates/faultinject/src/lib.rs", REGISTRY),
            scan_of("crates/demo/src/cond.rs", &cond),
        ];
        let v = check(&files, Some(TS_GOLDEN));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].excerpt.contains("demo.gauge.load"), "{}", v[0].excerpt);
    }

    #[test]
    fn fault_site_mismatches_both_directions() {
        let extra_site = "pub enum Site { Glitch }\n\
             impl Site {\n\
                 pub fn name(self) -> &'static str {\n\
                     match self {\n\
                         Site::Glitch => \"demo.glitch\",\n\
                         Site::Phantom => \"demo.phantom\",\n\
                     }\n\
                 }\n\
             }\n";
        let files = [
            scan_of("crates/faultinject/src/lib.rs", extra_site),
            scan_of(
                "crates/demo/src/u.rs",
                "fn f() { count(\"demo.core.reads\", 1); observe(\"demo.core.latency\", 2); }\n",
            ),
        ];
        let v = check(&files, Some(GOLDEN));
        let fault: Vec<&Violation> = v.iter().filter(|v| v.rule == "fault-site").collect();
        assert_eq!(fault.len(), 1, "{v:?}");
        assert!(fault[0].excerpt.contains("demo.phantom"));
        // Reverse: golden names a fault the registry lacks.
        let files2 = [
            scan_of(
                "crates/faultinject/src/lib.rs",
                "impl Site { pub fn name(self) -> &'static str { match self { _ => \"demo.other\" } } }\n",
            ),
            scan_of(
                "crates/demo/src/u.rs",
                "fn f() { count(\"demo.core.reads\", 1); observe(\"demo.core.latency\", 2); }\n",
            ),
        ];
        let v2 = check(&files2, Some(GOLDEN));
        assert!(
            v2.iter()
                .any(|v| v.rule == "fault-site" && v.excerpt.contains("demo.glitch")),
            "{v2:?}"
        );
    }

    #[test]
    fn duplicated_schema_string_flagged_once_per_copy() {
        let a = "pub const SCHEMA: &str = \"memcon-demo/v1\";\n";
        let b = "fn emit() -> String { String::from(\"memcon-demo/v1\") }\n";
        let files = [
            scan_of("crates/a/src/lib.rs", a),
            scan_of("crates/b/src/lib.rs", b),
        ];
        let v = check(&files, None);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "schema-once");
        assert_eq!(v[0].path, "crates/b/src/lib.rs");
        assert!(
            v[0].excerpt.contains("crates/a/src/lib.rs:1"),
            "{}",
            v[0].excerpt
        );
        // A single definition is fine, as are test-code mentions.
        let t = "#[cfg(test)]\nmod tests { fn t() { assert_eq!(S, \"memcon-demo/v1\"); } }\n";
        let files2 = [
            scan_of("crates/a/src/lib.rs", a),
            scan_of("crates/a/tests/check.rs", b),
            scan_of("crates/a/src/t.rs", t),
        ];
        assert!(check(&files2, None).is_empty());
    }

    #[test]
    fn stale_conditional_allowlist_reported() {
        let uses_all = format!(
            "fn f() {{ count(\"demo.core.reads\", 1); observe(\"demo.core.latency\", 2); }}\n{}",
            cond_uses()
        );
        let files = [
            scan_of("crates/demo/src/u.rs", &uses_all),
            scan_of("crates/faultinject/src/lib.rs", REGISTRY),
        ];
        assert!(check(&files, Some(GOLDEN)).is_empty());
        // Drop the conditional uses: every allowlist entry is now stale.
        let files2 = [
            scan_of(
                "crates/demo/src/u.rs",
                "fn f() { count(\"demo.core.reads\", 1); observe(\"demo.core.latency\", 2); }\n",
            ),
            scan_of("crates/faultinject/src/lib.rs", REGISTRY),
        ];
        let v = check(&files2, Some(GOLDEN));
        assert_eq!(v.len(), KNOWN_CONDITIONAL_METRICS.len(), "{v:?}");
        assert!(v.iter().all(|v| v.excerpt.contains("stale allowlist")));
    }
}
