//! Per-file analysis context: the token stream plus the structural facts
//! every rule needs — `#[cfg(test)]` scoping, `thread_local!` regions,
//! a lightweight item model, and allow-marker placement.

use crate::lexer::{self, Kind, Token};
use std::collections::BTreeMap;

/// How a source file is treated by the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: all rules apply.
    Library,
    /// Binary targets (`src/main.rs`, `src/bin/**`): panics and unwraps
    /// are legitimate CLI error handling; the data-integrity and
    /// determinism rules still apply (a wall clock in a CLI leaks into
    /// "deterministic" output just the same), but `env-read` does not —
    /// binaries are where arguments and environment get resolved.
    Binary,
    /// Tests, benches, examples: no rules apply.
    Test,
}

/// Classifies a workspace-relative path.
#[must_use]
pub fn classify(path: &str) -> FileClass {
    let p = path.replace('\\', "/");
    for dir in ["tests/", "benches/", "examples/"] {
        if p.starts_with(dir) || p.contains(&format!("/{dir}")) {
            return FileClass::Test;
        }
    }
    if p.ends_with("/main.rs") || p.contains("/bin/") {
        return FileClass::Binary;
    }
    FileClass::Library
}

/// Item kinds tracked by the lightweight item model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(..) { .. }` (or a bodiless trait-method declaration).
    Fn,
    /// `mod name { .. }` / `mod name;`.
    Mod,
    /// `impl Type { .. }` / `impl Trait for Type { .. }`.
    Impl,
}

/// One item: kind, name, and the token-index span of its body.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name (for `impl`, the first type-ish identifier).
    pub name: String,
    /// Token index of the introducing keyword.
    pub keyword: usize,
    /// Token-index range of the body, `{`-exclusive (empty for `;` items).
    pub body: std::ops::Range<usize>,
    /// 1-based line of the introducing keyword.
    pub line: u32,
}

/// What an allow marker suppresses on a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Allow {
    /// `memlint: allow` / `memlint: allow (justification)` — every rule.
    All,
    /// `memlint: allow(rule-a, rule-b)` — only the named rules. Note the
    /// absence of a space before `(`: a space means the parenthesized text
    /// is prose justification, not a rule list.
    Rules(Vec<String>),
}

impl Allow {
    /// Whether this marker suppresses `rule`.
    #[must_use]
    pub fn covers(&self, rule: &str) -> bool {
        match self {
            Allow::All => true,
            Allow::Rules(rs) => rs.iter().any(|r| r == rule),
        }
    }
}

/// A fully analyzed source file, ready for rules to walk.
#[derive(Debug)]
pub struct FileScan<'s> {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// Rule applicability class, derived from the path.
    pub class: FileClass,
    /// The raw source.
    pub src: &'s str,
    /// The complete token stream.
    pub tokens: Vec<Token<'s>>,
    /// Parallel to `tokens`: token sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Parallel to `tokens`: token sits inside a `thread_local! { … }`
    /// invocation (whose statics are per-thread, not global state).
    pub in_thread_local: Vec<bool>,
    /// `fn` / `mod` / `impl` spans, in source order.
    pub items: Vec<Item>,
    /// Allow markers by 1-based line.
    allows: BTreeMap<u32, Allow>,
    /// Byte offset of each line start (index 0 ↦ line 1).
    line_starts: Vec<usize>,
}

impl<'s> FileScan<'s> {
    /// Lexes and analyzes one file.
    #[must_use]
    pub fn new(path: &str, src: &'s str) -> Self {
        let tokens = lexer::lex(src);
        let in_test = mark_cfg_test(&tokens);
        let in_thread_local = mark_macro_regions(&tokens, "thread_local");
        let items = collect_items(&tokens);
        let allows = collect_allows(&tokens);
        let mut line_starts = vec![0usize];
        line_starts.extend(
            src.char_indices()
                .filter(|&(_, c)| c == '\n')
                .map(|(i, _)| i + 1),
        );
        FileScan {
            path: path.replace('\\', "/"),
            class: classify(path),
            src,
            tokens,
            in_test,
            in_thread_local,
            items,
            allows,
            line_starts,
        }
    }

    /// Whether `rule` is suppressed on `line` by an allow marker.
    #[must_use]
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|a| a.covers(rule))
    }

    /// The trimmed source text of a 1-based line (empty when out of range).
    #[must_use]
    pub fn line_text(&self, line: u32) -> &str {
        let idx = line.saturating_sub(1) as usize;
        let Some(&start) = self.line_starts.get(idx) else {
            return "";
        };
        let end = self
            .line_starts
            .get(idx + 1)
            .map_or(self.src.len(), |&e| e - 1);
        self.src[start..end.max(start)].trim()
    }

    /// The innermost `fn` item whose body contains token `idx`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, idx: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn && it.body.contains(&idx))
            .last()
    }

    /// Iterator over `(index, token)` for non-comment tokens outside
    /// `#[cfg(test)]` regions — the stream rules should pattern-match on.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token<'s>)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| !t.is_comment() && !self.in_test[*i])
    }
}

/// Marks tokens covered by a `#[cfg(test)]` attribute: the attribute
/// itself, any further attributes, and the annotated item through its
/// matching `}` (or terminating `;`).
fn mark_cfg_test(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut c = 0usize;
    while c < code.len() {
        if is_cfg_test_at(tokens, code.as_slice(), c) {
            // Cover this attribute, any subsequent attributes, then the item.
            let mut d = c;
            while let Some(next) = skip_attribute(tokens, &code, d) {
                d = next;
            }
            let end = skip_item(tokens, &code, d).min(code.len());
            for &j in &code[c..end] {
                out[j] = true;
            }
            c = end.max(c + 1);
        } else {
            c += 1;
        }
    }
    out
}

/// Whether the code-token sequence at position `c` spells `#[cfg(test)]`.
fn is_cfg_test_at(tokens: &[Token<'_>], code: &[usize], c: usize) -> bool {
    let texts: Vec<&str> = code[c..].iter().take(7).map(|&i| tokens[i].text).collect();
    texts.as_slice() == ["#", "[", "cfg", "(", "test", ")", "]"]
}

/// If the code token at `c` opens an attribute (`#` `[` … `]`), returns the
/// code position just past its closing `]`.
fn skip_attribute(tokens: &[Token<'_>], code: &[usize], c: usize) -> Option<usize> {
    if tokens[*code.get(c)?].text != "#" || tokens[*code.get(c + 1)?].text != "[" {
        return None;
    }
    let mut depth = 0i64;
    let mut d = c + 1;
    while d < code.len() {
        match tokens[code[d]].text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(d + 1);
                }
            }
            _ => {}
        }
        d += 1;
    }
    Some(code.len())
}

/// Returns the code position just past the item starting at `c`: scans to
/// the first `{` at paren depth zero and through its matching `}`, or to a
/// terminating `;` before any brace.
fn skip_item(tokens: &[Token<'_>], code: &[usize], c: usize) -> usize {
    let mut paren = 0i64;
    let mut d = c;
    while d < code.len() {
        match tokens[code[d]].text {
            "(" => paren += 1,
            ")" => paren -= 1,
            ";" if paren == 0 => return d + 1,
            "{" if paren == 0 => {
                let mut depth = 0i64;
                while d < code.len() {
                    match tokens[code[d]].text {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return d + 1;
                            }
                        }
                        _ => {}
                    }
                    d += 1;
                }
                return code.len();
            }
            _ => {}
        }
        d += 1;
    }
    code.len()
}

/// Marks tokens inside `name! { … }` macro invocations (e.g.
/// `thread_local!`), whose contents other rules should treat specially.
fn mark_macro_regions(tokens: &[Token<'_>], name: &str) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut c = 0usize;
    while c + 2 < code.len() {
        let (a, b, br) = (code[c], code[c + 1], code[c + 2]);
        if tokens[a].kind == Kind::Ident
            && tokens[a].text == name
            && tokens[b].text == "!"
            && tokens[br].text == "{"
        {
            let mut depth = 0i64;
            let mut d = c + 2;
            while d < code.len() {
                out[code[d]] = true;
                match tokens[code[d]].text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                d += 1;
            }
            out[a] = true;
            out[b] = true;
            c = d + 1;
        } else {
            c += 1;
        }
    }
    out
}

/// Collects `fn` / `mod` / `impl` items (at any nesting depth).
fn collect_items(tokens: &[Token<'_>]) -> Vec<Item> {
    let mut items = Vec::new();
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for (c, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != Kind::Ident {
            continue;
        }
        let kind = match t.text {
            "fn" => ItemKind::Fn,
            "mod" => ItemKind::Mod,
            "impl" => ItemKind::Impl,
            _ => continue,
        };
        // `fn`/`mod` must be followed by a name; this also rejects usages
        // like `Fn()` bounds (capital F) and `impl Trait` in type position
        // is accepted as an Impl item only when a body `{` actually follows
        // at depth 0 — harmless either way for our consumers.
        let name = match kind {
            ItemKind::Fn | ItemKind::Mod => {
                let Some(&n) = code.get(c + 1) else { continue };
                if tokens[n].kind != Kind::Ident {
                    continue;
                }
                tokens[n].text.to_string()
            }
            ItemKind::Impl => code
                .get(c + 1..)
                .and_then(|rest| {
                    rest.iter()
                        .map(|&j| &tokens[j])
                        .find(|t| t.kind == Kind::Ident)
                })
                .map_or_else(String::new, |t| t.text.to_string()),
        };
        // Body: from the first `{` at paren depth 0 to its match.
        let mut paren = 0i64;
        let mut body = 0..0;
        let mut d = c;
        'scan: while d < code.len() {
            match tokens[code[d]].text {
                "(" => paren += 1,
                ")" => paren -= 1,
                ";" if paren == 0 => break 'scan,
                "{" if paren == 0 => {
                    let open = d;
                    let mut depth = 0i64;
                    while d < code.len() {
                        match tokens[code[d]].text {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        d += 1;
                    }
                    body = code[open] + 1..code.get(d).copied().unwrap_or(tokens.len());
                    break 'scan;
                }
                _ => {}
            }
            d += 1;
        }
        items.push(Item {
            kind,
            name,
            keyword: i,
            body,
            line: t.line,
        });
    }
    items
}

/// Parses allow markers out of comment tokens.
///
/// A marker suppresses findings on its own line; when the comment is the
/// only thing on its line, it suppresses the *next* line instead (so
/// rustfmt splitting a trailing comment off a long statement keeps the
/// marker effective). Multi-line block comments cover the line after
/// their final line.
fn collect_allows(tokens: &[Token<'_>]) -> BTreeMap<u32, Allow> {
    // Marker needle assembled by concatenation so memlint's own sources
    // (which must self-lint cleanly) never trip rules on this literal.
    let needle: String = ["memlint:", " allow"].concat();
    let mut lines_with_code = std::collections::BTreeSet::new();
    for t in tokens {
        if !t.is_comment() {
            lines_with_code.insert(t.line);
        }
    }
    let mut out = BTreeMap::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let Some(at) = t.text.find(needle.as_str()) else {
            continue;
        };
        let spec = parse_allow_spec(&t.text[at + needle.len()..]);
        let last_line = t.line + t.text.bytes().filter(|&b| b == b'\n').count() as u32;
        if lines_with_code.contains(&t.line) {
            // Trailing comment: covers each line the comment touches.
            for l in t.line..=last_line {
                out.insert(l, spec.clone());
            }
        } else {
            // Standalone comment: covers its own lines and the next one.
            for l in t.line..=last_line + 1 {
                out.insert(l, spec.clone());
            }
        }
    }
    out
}

/// Parses the tail after `memlint: allow`. A `(` *immediately* following
/// names rules (`allow(map-iter-order)`); anything else — including
/// ` (justification prose)` with a leading space — means allow-all.
fn parse_allow_spec(tail: &str) -> Allow {
    let Some(rest) = tail.strip_prefix('(') else {
        return Allow::All;
    };
    let Some(end) = rest.find(')') else {
        return Allow::All;
    };
    let rules: Vec<String> = rest[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        Allow::All
    } else {
        Allow::Rules(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/dram/src/bank.rs"), FileClass::Library);
        assert_eq!(
            classify("crates/memtrace/src/bin/gen.rs"),
            FileClass::Binary
        );
        assert_eq!(
            classify("crates/experiments/src/main.rs"),
            FileClass::Binary
        );
        assert_eq!(classify("crates/memcon/tests/props.rs"), FileClass::Test);
        assert_eq!(classify("crates/bench/benches/micro.rs"), FileClass::Test);
        assert_eq!(classify("tests/end_to_end.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Test);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
    }

    fn scan(src: &str) -> FileScan<'_> {
        FileScan::new("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn cfg_test_region_marks_tokens() {
        let s = scan(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { inner(); }\n\
             }\n\
             fn later() {}\n",
        );
        let flag = |name: &str| {
            let (i, _) = s
                .tokens
                .iter()
                .enumerate()
                .find(|(_, t)| t.text == name)
                .unwrap();
            s.in_test[i]
        };
        assert!(!flag("live"));
        assert!(flag("tests"));
        assert!(flag("inner"));
        assert!(!flag("later"));
    }

    #[test]
    fn cfg_test_with_further_attributes_and_semicolon_items() {
        let s = scan("#[cfg(test)]\n#[allow(dead_code)]\nmod tests;\nfn live() {}\n");
        let (i, _) = s
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.text == "live")
            .unwrap();
        assert!(!s.in_test[i]);
        let (j, _) = s
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.text == "tests")
            .unwrap();
        assert!(s.in_test[j]);
    }

    #[test]
    fn thread_local_region_marked() {
        let s =
            scan("thread_local! { static TL: Cell<u32> = Cell::new(0); }\nstatic G: u32 = 0;\n");
        let (i, _) = s
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.text == "TL")
            .unwrap();
        assert!(s.in_thread_local[i]);
        let (j, _) = s
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.text == "G")
            .unwrap();
        assert!(!s.in_thread_local[j]);
    }

    #[test]
    fn items_record_fn_mod_impl_spans() {
        let s = scan(
            "mod inner {\n\
                 pub fn name() -> &'static str { \"x\" }\n\
             }\n\
             impl Thing {\n\
                 fn helper(&self) { body(); }\n\
             }\n",
        );
        let kinds: Vec<(ItemKind, &str)> = s
            .items
            .iter()
            .map(|it| (it.kind, it.name.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Mod, "inner"),
                (ItemKind::Fn, "name"),
                (ItemKind::Impl, "Thing"),
                (ItemKind::Fn, "helper"),
            ]
        );
        // `name`'s body contains its string literal.
        let name_item = &s.items[1];
        let strs: Vec<&str> = name_item
            .body
            .clone()
            .filter_map(|i| s.tokens[i].str_value())
            .collect();
        assert_eq!(strs, vec!["x"]);
        // enclosing_fn resolves the innermost fn.
        let (bi, _) = s
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.text == "body")
            .unwrap();
        assert_eq!(s.enclosing_fn(bi).unwrap().name, "helper");
    }

    #[test]
    fn allow_markers_scope_and_placement() {
        let marker_all: String = ["// memlint:", " allow (why not)\n"].concat();
        let marker_ruled: String =
            ["// memlint:", " allow(map-iter-order, no-unwrap): ok\n"].concat();
        let trailing: String = ["fn f() {} // memlint:", " allow\n"].concat();

        // Standalone allow-all covers its line and the next.
        let src_all = format!("{marker_all}fn f() {{}}\n");
        let s = scan(&src_all);
        assert!(s.allowed("no-unwrap", 1));
        assert!(s.allowed("no-unwrap", 2));
        assert!(!s.allowed("no-unwrap", 3));

        // Rule-scoped covers only the named rules.
        let src_ruled = format!("{marker_ruled}fn f() {{}}\n");
        let s = scan(&src_ruled);
        assert!(s.allowed("map-iter-order", 2));
        assert!(s.allowed("no-unwrap", 2));
        assert!(!s.allowed("no-panic", 2));

        // Trailing marker covers only its own line.
        let src_trail = format!("{trailing}fn g() {{}}\n");
        let s = scan(&src_trail);
        assert!(s.allowed("anything", 1));
        assert!(!s.allowed("anything", 2));
    }

    #[test]
    fn line_text_trims() {
        let s = scan("fn f() {}\n    let x = 1;\n");
        assert_eq!(s.line_text(2), "let x = 1;");
        assert_eq!(s.line_text(99), "");
    }
}
