//! Ratchet v2: frozen violations keyed by `(rule, file, fingerprint)`.
//!
//! The v1 ratchet froze per-`(rule, file)` *counts*, which made every
//! refactor a ratchet event: moving a frozen `.unwrap()` ten lines down
//! kept the count but moving half a file into a new module tripped the
//! gate, and fixing one violation while introducing another at a
//! different site canceled out invisibly. v2 keys each frozen violation
//! by a fingerprint of its *normalized source line* (whitespace collapsed,
//! hashed with FNV-1a 64 together with the rule name), so:
//!
//! * moving a violation within its file costs nothing — the fingerprint
//!   is line-number-free;
//! * fixing one site and adding a different one is visible — the new
//!   site's fingerprint is not in the ratchet and fails the gate;
//! * identical lines (e.g. two copies of the same `.unwrap()` idiom in
//!   one file) share a fingerprint and are frozen with a count.
//!
//! Format, one entry per line, tab-separated:
//!
//! ```text
//! rule<TAB>path<TAB>fingerprint-hex16<TAB>count<TAB>excerpt-hint
//! ```
//!
//! The excerpt hint is for humans diffing the file; parsing ignores it.
//! A v1-format file (three columns) is rejected with a pointer at
//! `--update-ratchet`.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// The ratchet file name at the workspace root.
pub const RATCHET_FILE: &str = "memlint.ratchet";

/// Frozen violation counts keyed by `(rule, path, fingerprint)`.
pub type Ratchet = BTreeMap<(String, String, u64), usize>;

/// FNV-1a 64-bit.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Collapses runs of whitespace to single spaces and trims, so formatting
/// churn never changes a fingerprint.
#[must_use]
pub fn normalize_line(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The v2 fingerprint of a violation: FNV-1a 64 over
/// `rule \0 normalized-excerpt`.
#[must_use]
pub fn fingerprint(rule: &str, excerpt: &str) -> u64 {
    let norm = normalize_line(excerpt);
    fnv1a(rule.bytes().chain(std::iter::once(0u8)).chain(norm.bytes()))
}

/// Collapses violations into ratchet form, remembering one excerpt hint
/// per fingerprint (the first seen).
#[must_use]
pub fn collapse(violations: &[Violation]) -> (Ratchet, BTreeMap<u64, String>) {
    let mut map = Ratchet::new();
    let mut hints = BTreeMap::new();
    for v in violations {
        let fp = fingerprint(v.rule, &v.excerpt);
        *map.entry((v.rule.to_string(), v.path.clone(), fp))
            .or_insert(0) += 1;
        hints.entry(fp).or_insert_with(|| {
            let norm = normalize_line(&v.excerpt);
            if norm.len() > 80 {
                let cut = (0..=80).rev().find(|&i| norm.is_char_boundary(i));
                format!("{}…", &norm[..cut.unwrap_or(0)])
            } else {
                norm
            }
        });
    }
    (map, hints)
}

/// Parses a v2 ratchet file.
///
/// # Errors
///
/// Returns the first malformed line; a line with the v1 three-column shape
/// produces a migration hint instead of a generic parse error.
pub fn parse(text: &str) -> Result<Ratchet, String> {
    let mut map = Ratchet::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() == 3 && parts[2].parse::<usize>().is_ok() {
            return Err(format!(
                "ratchet line {} is in the v1 (rule, file, count) format; regenerate \
                 the v2 ratchet with `cargo run -p xtask -- lint --update-ratchet`",
                idx + 1
            ));
        }
        let entry = (|| {
            let rule = parts.first()?;
            let path = parts.get(1)?;
            let fp = u64::from_str_radix(parts.get(2)?, 16).ok()?;
            let count: usize = parts.get(3)?.parse().ok()?;
            Some((((*rule).to_string(), (*path).to_string(), fp), count))
        })();
        match entry {
            Some((key, count)) => {
                map.insert(key, count);
            }
            None => return Err(format!("ratchet line {} is malformed: {line:?}", idx + 1)),
        }
    }
    Ok(map)
}

/// Serializes a ratchet (zero-count entries dropped, keys sorted, total
/// stated in the header so "strictly fewer frozen violations" is checkable
/// at a glance).
#[must_use]
pub fn format(ratchet: &Ratchet, hints: &BTreeMap<u64, String>) -> String {
    let total: usize = ratchet.values().sum();
    let mut out = format!(
        "# memlint ratchet v2: frozen violations keyed by (rule, file, line fingerprint).\n\
         # Fingerprints hash the rule + whitespace-normalized source line (FNV-1a 64),\n\
         # so refactors that move a frozen line don't consume ratchet budget.\n\
         # Regenerate with `cargo run -p xtask -- lint --update-ratchet`.\n\
         # Entries may only disappear; new fingerprints fail the lint.\n\
         # total frozen violations: {total}\n"
    );
    for ((rule, path, fp), count) in ratchet {
        if *count > 0 {
            let hint = hints.get(fp).map_or("", String::as_str);
            out.push_str(&std::format!(
                "{rule}\t{path}\t{fp:016x}\t{count}\t{hint}\n"
            ));
        }
    }
    out
}

/// A `(rule, path, fingerprint)` key with its (current, frozen) counts.
pub type Delta = ((String, String, u64), usize, usize);

/// Compares current violations against the frozen ratchet: regressions
/// (new fingerprints, or counts above the freeze) and improvements
/// (counts below the freeze, including fully fixed entries).
#[must_use]
pub fn compare(current: &Ratchet, frozen: &Ratchet) -> (Vec<Delta>, Vec<Delta>) {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for (key, &count) in current {
        let allowed = frozen.get(key).copied().unwrap_or(0);
        if count > allowed {
            regressions.push((key.clone(), count, allowed));
        } else if count < allowed {
            improvements.push((key.clone(), count, allowed));
        }
    }
    for (key, &allowed) in frozen {
        if allowed > 0 && !current.contains_key(key) {
            improvements.push((key.clone(), 0, allowed));
        }
    }
    (regressions, improvements)
}

/// Marks which violations are frozen: for each `(rule, path, fingerprint)`
/// bucket, the first `min(current, frozen)` occurrences count as frozen.
/// Returns a parallel `bool` vector.
#[must_use]
pub fn mark_frozen(violations: &[Violation], frozen: &Ratchet) -> Vec<bool> {
    let mut budget: BTreeMap<(String, String, u64), usize> = BTreeMap::new();
    violations
        .iter()
        .map(|v| {
            let key = (
                v.rule.to_string(),
                v.path.clone(),
                fingerprint(v.rule, &v.excerpt),
            );
            let allowed = frozen.get(&key).copied().unwrap_or(0);
            let used = budget.entry(key).or_insert(0);
            *used += 1;
            *used <= allowed
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: u32, excerpt: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn fingerprint_ignores_whitespace_and_line_numbers() {
        let a = fingerprint("no-unwrap", "let x =  m.get(&k) .unwrap();");
        let b = fingerprint("no-unwrap", "let x = m.get(&k) .unwrap();");
        assert_eq!(a, b);
        // …but not the rule or the content.
        assert_ne!(a, fingerprint("no-panic", "let x = m.get(&k) .unwrap();"));
        assert_ne!(a, fingerprint("no-unwrap", "let y = m.get(&k) .unwrap();"));
    }

    #[test]
    fn roundtrip_and_compare() {
        let violations = vec![
            v("no-unwrap", "crates/a/src/lib.rs", 3, "x.unwrap();"),
            v("no-unwrap", "crates/a/src/lib.rs", 9, "x.unwrap();"),
            v("no-panic", "crates/b/src/lib.rs", 1, "panic!(\"boom\")"),
        ];
        let (current, hints) = collapse(&violations);
        assert_eq!(current.values().sum::<usize>(), 3);
        assert_eq!(current.len(), 2); // identical lines share a fingerprint

        let text = format(&current, &hints);
        assert!(text.contains("total frozen violations: 3"));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, current);

        // Clean tree: no deltas.
        let (reg, imp) = compare(&current, &parsed);
        assert!(reg.is_empty() && imp.is_empty());

        // A brand-new fingerprint is a regression against 0.
        let mut worse = violations.clone();
        worse.push(v("no-unwrap", "crates/a/src/lib.rs", 20, "fresh.unwrap();"));
        let (worse_map, _) = collapse(&worse);
        let (reg, _) = compare(&worse_map, &parsed);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].2, 0);

        // Dropping one duplicate shows as an improvement, not a wash.
        let (better_map, _) = collapse(&violations[1..]);
        let (reg, imp) = compare(&better_map, &parsed);
        assert!(reg.is_empty());
        assert_eq!(imp.len(), 1);
        assert_eq!(imp[0].1, 1); // current
        assert_eq!(imp[0].2, 2); // frozen
    }

    #[test]
    fn moving_a_violation_is_free() {
        let before = vec![v("no-unwrap", "crates/a/src/lib.rs", 3, "  x.unwrap();")];
        let after = vec![v("no-unwrap", "crates/a/src/lib.rs", 300, "x.unwrap();")];
        let (frozen, _) = collapse(&before);
        let (current, _) = collapse(&after);
        let (reg, imp) = compare(&current, &frozen);
        assert!(reg.is_empty() && imp.is_empty());
    }

    #[test]
    fn v1_files_get_a_migration_hint() {
        let err = parse("no-unwrap\tcrates/a/src/lib.rs\t3\n").unwrap_err();
        assert!(err.contains("v1"), "{err}");
        assert!(err.contains("--update-ratchet"), "{err}");
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse("# comment\n\n").unwrap().is_empty());
        assert!(parse("no-unwrap crates/a.rs deadbeef 1 hint\n").is_err());
        assert!(parse("no-unwrap\tcrates/a.rs\tnothex\t1\thint\n").is_err());
        assert!(parse("no-unwrap\tcrates/a.rs\tdeadbeefdeadbeef\tmany\thint\n").is_err());
        // Hint column is optional-ish: missing hint is still 5 columns via
        // trailing tab, but a 4-column line parses too? No — count is the
        // 4th column and the hint the 5th; 4 columns parse fine.
        assert!(parse("no-unwrap\tcrates/a.rs\tdeadbeefdeadbeef\t1\n").is_ok());
    }

    #[test]
    fn mark_frozen_budgets_per_fingerprint() {
        let violations = vec![
            v("no-unwrap", "crates/a/src/lib.rs", 3, "x.unwrap();"),
            v("no-unwrap", "crates/a/src/lib.rs", 9, "x.unwrap();"),
            v("no-unwrap", "crates/a/src/lib.rs", 12, "y.unwrap();"),
        ];
        // Freeze only one copy of the x line, nothing else.
        let (mut frozen, _) = collapse(&violations[..1]);
        frozen.iter_mut().for_each(|(_, c)| *c = 1);
        let marks = mark_frozen(&violations, &frozen);
        assert_eq!(marks, vec![true, false, false]);
    }

    #[test]
    fn hints_truncate_long_lines() {
        let long = "x".repeat(200);
        let violations = vec![v("no-unwrap", "f.rs", 1, &long)];
        let (_, hints) = collapse(&violations);
        let hint = hints.values().next().unwrap();
        assert!(hint.len() < 90);
        assert!(hint.ends_with('…'));
    }
}
