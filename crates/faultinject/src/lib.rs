//! Deterministic, replayable fault injection for the MEMCON stack.
//!
//! A [`FaultPlan`] names a set of injection [`Site`]s, each with a rate and
//! a [`Schedule`]. Consumers ask the plan whether the *k*-th decision at a
//! site fires; the answer is a pure function of `(plan seed, site, k)`, so
//! every run is bit-reproducible and a failing plan can be shrunk by
//! lowering rates or narrowing schedules without perturbing the decisions
//! that remain.
//!
//! Two access modes:
//!
//! * [`FaultSession`] — a per-consumer handle that numbers decisions
//!   sequentially. Each consumer (a controller, an engine run) owns its own
//!   session, so parallel consumers never share mutable state and the
//!   decision sequence of one consumer is independent of scheduling.
//! * [`FaultPlan::fires`] — the stateless keyed form for callers that carry
//!   a natural deterministic key (e.g. a global row index), immune to
//!   thread interleaving by construction.
//!
//! Like `telemetry`, the injector is **off by default and zero-cost when
//! off**: [`enabled`] is one relaxed atomic load, and sessions simply do
//! not exist ([`FaultSession::begin`] returns `None`) unless a plan is
//! [`install`]ed. Plans serialize to JSON under schema
//! `memcon-faultplan/v1`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use memutil::json::Json;

/// The JSON schema identifier of serialized plans.
pub const SCHEMA: &str = "memcon-faultplan/v1";

/// Number of named injection sites.
pub const N_SITES: usize = 14;

/// A named fault-injection site. Sites are stable API: their names appear
/// in serialized plans and in telemetry counter names
/// (`fault.<site name>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Site {
    /// `memsim`: a controller command (test-traffic request) is silently
    /// dropped at enqueue; demand requests are bounced for retry instead
    /// (liveness: a core waiting on a dropped demand read would hang).
    SimCmdDrop = 0,
    /// `memsim`: a test-traffic request is enqueued twice.
    SimCmdDup = 1,
    /// `memsim`: an ACT is issued despite a rank-level tRRD/tFAW block —
    /// a transient timing violation the offline `ProtocolChecker` surfaces.
    SimTimingViolation = 2,
    /// `memsim`: a refresh blackout overruns its tRFC window.
    SimRefreshOverrun = 3,
    /// `dram`: a transient single-bit flip in the row under evaluation.
    DramBitFlip = 4,
    /// `dram`: a VRT-style flip-flopping cell — the verdict for the same
    /// content toggles between evaluations.
    DramVrt = 5,
    /// `memcon`: an in-flight test is preempted by a (synthetic) write
    /// mid-quantum.
    TestPreempt = 6,
    /// `memcon`: a torn/partial read-back — the test completes without a
    /// usable verdict.
    TornRead = 7,
    /// `memcon`: the two read passes of a test disagree; the verdict is
    /// ambiguous.
    OracleDisagree = 8,
    /// `memcon::ecc`: a correctable single-bit word error during read-back.
    EccCorrectable = 9,
    /// `memcon::ecc`: an uncorrectable double-bit word error during
    /// read-back.
    EccUncorrectable = 10,
    /// `store`: a WAL append is torn mid-frame — only a prefix of the
    /// record reaches the file before the simulated crash.
    StoreTornWrite = 11,
    /// `store`: recovery's WAL scan sees an early EOF — the file read
    /// comes up short of the next full record.
    StoreShortRead = 12,
    /// `store`: a WAL record is written with a corrupted checksum, to be
    /// caught (and truncated away) at recovery time.
    StoreCorruptRecord = 13,
}

impl Site {
    /// Every site, in index order.
    pub const ALL: [Site; N_SITES] = [
        Site::SimCmdDrop,
        Site::SimCmdDup,
        Site::SimTimingViolation,
        Site::SimRefreshOverrun,
        Site::DramBitFlip,
        Site::DramVrt,
        Site::TestPreempt,
        Site::TornRead,
        Site::OracleDisagree,
        Site::EccCorrectable,
        Site::EccUncorrectable,
        Site::StoreTornWrite,
        Site::StoreShortRead,
        Site::StoreCorruptRecord,
    ];

    /// The site's stable name (used in plan JSON and telemetry counters).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::SimCmdDrop => "memsim.cmd_drop",
            Site::SimCmdDup => "memsim.cmd_dup",
            Site::SimTimingViolation => "memsim.timing_violation",
            Site::SimRefreshOverrun => "memsim.refresh_overrun",
            Site::DramBitFlip => "dram.bit_flip",
            Site::DramVrt => "dram.vrt_toggle",
            Site::TestPreempt => "memcon.test_preempt",
            Site::TornRead => "memcon.torn_read",
            Site::OracleDisagree => "memcon.oracle_disagree",
            Site::EccCorrectable => "memcon.ecc_correctable",
            Site::EccUncorrectable => "memcon.ecc_uncorrectable",
            Site::StoreTornWrite => "store.torn_write",
            Site::StoreShortRead => "store.short_read",
            Site::StoreCorruptRecord => "store.corrupt_record",
        }
    }

    /// Parses a stable site name back to the site.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// When a site's decisions are eligible to fire, in units of the site's
/// decision index (0-based: the *k*-th time the site is consulted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Every decision is eligible.
    Always,
    /// Only decision `at` is eligible (and it fires regardless of rate,
    /// as long as the rate is positive) — the shrinking workhorse.
    OneShot {
        /// The eligible decision index.
        at: u64,
    },
    /// Decisions `start .. start + len` are eligible.
    Burst {
        /// First eligible decision index.
        start: u64,
        /// Number of eligible decisions.
        len: u64,
    },
}

impl Schedule {
    /// Whether decision `index` is eligible under this schedule.
    #[must_use]
    pub fn admits(&self, index: u64) -> bool {
        match *self {
            Schedule::Always => true,
            Schedule::OneShot { at } => index == at,
            Schedule::Burst { start, len } => index >= start && index - start < len,
        }
    }
}

/// Per-site injection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    /// Firing probability per eligible decision, in `[0, 1]`.
    pub rate: f64,
    /// Which decisions are eligible.
    pub schedule: Schedule,
}

impl SiteSpec {
    /// A spec firing every eligible decision with probability `rate`.
    #[must_use]
    pub fn rate(rate: f64) -> SiteSpec {
        SiteSpec {
            rate,
            schedule: Schedule::Always,
        }
    }
}

/// SplitMix64 finalizer: the avalanche mix underlying the per-decision
/// hash. Identical constants to `memutil::rng::SplitMix64`.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, serializable fault plan: which sites inject, how often, when.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-decision hash; two plans with different seeds make
    /// independent decisions at every site.
    pub seed: u64,
    sites: [Option<SiteSpec>; N_SITES],
}

impl FaultPlan {
    /// An empty plan (no site injects) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: [None; N_SITES],
        }
    }

    /// Builder: sets `site` to `spec`.
    #[must_use]
    pub fn with_site(mut self, site: Site, spec: SiteSpec) -> FaultPlan {
        self.sites[site as usize] = Some(spec);
        self
    }

    /// A plan injecting at **every** site with the same always-eligible
    /// `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is a probability.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut plan = FaultPlan::new(seed);
        for site in Site::ALL {
            plan.sites[site as usize] = Some(SiteSpec::rate(rate));
        }
        plan
    }

    /// The spec of `site`, if it injects at all.
    #[must_use]
    pub fn site(&self, site: Site) -> Option<&SiteSpec> {
        self.sites[site as usize].as_ref()
    }

    /// Derives the shard-`shard` variant of this plan: identical site
    /// specs, but the decision-stream seed reseeded through the avalanche
    /// mix. A fleet hands each shard engine its own derived plan so every
    /// shard draws an independent fault stream that replays bit-for-bit
    /// regardless of which worker thread steps the shard — per-shard keyed
    /// sessions instead of one shared, order-sensitive stream.
    #[must_use]
    pub fn for_shard(&self, shard: u64) -> FaultPlan {
        FaultPlan {
            seed: mix64(self.seed ^ mix64(shard ^ 0x5EED_F1EE_7A5D_0001)),
            sites: self.sites,
        }
    }

    /// Whether decision `index` at `site` fires. Pure in
    /// `(self.seed, site, index)`.
    #[must_use]
    pub fn fires(&self, site: Site, index: u64) -> bool {
        let Some(spec) = &self.sites[site as usize] else {
            return false;
        };
        if spec.rate <= 0.0 || !spec.schedule.admits(index) {
            return false;
        }
        if spec.rate >= 1.0 || matches!(spec.schedule, Schedule::OneShot { .. }) {
            // OneShot schedules fire deterministically at their single
            // eligible index: that is what makes shrinking monotone.
            return true;
        }
        let h = mix64(self.seed ^ mix64(site as u64) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits → uniform in [0, 1).
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < spec.rate
    }

    /// Serializes to the `memcon-faultplan/v1` JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut sites = Json::obj();
        for site in Site::ALL {
            let Some(spec) = &self.sites[site as usize] else {
                continue;
            };
            let schedule = match spec.schedule {
                Schedule::Always => Json::obj().field("kind", "always"),
                Schedule::OneShot { at } => Json::obj().field("kind", "one_shot").field("at", at),
                Schedule::Burst { start, len } => Json::obj()
                    .field("kind", "burst")
                    .field("start", start)
                    .field("len", len),
            };
            sites.set(
                site.name(),
                Json::obj()
                    .field("rate", spec.rate)
                    .field("schedule", schedule),
            );
        }
        Json::obj()
            .field("schema", SCHEMA)
            .field("seed", self.seed)
            .field("sites", sites)
    }

    /// Parses a `memcon-faultplan/v1` JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: bad JSON,
    /// wrong schema, unknown site name, or an out-of-range rate.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let json = Json::parse(text)?;
        let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!("expected schema {SCHEMA}, got {schema:?}"));
        }
        let seed = json
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("plan is missing an integer seed")?;
        let mut plan = FaultPlan::new(seed);
        let Some(Json::Obj(entries)) = json.get("sites") else {
            return Err("plan is missing the sites object".into());
        };
        for (name, spec) in entries {
            let site =
                Site::from_name(name).ok_or_else(|| format!("unknown fault site {name:?}"))?;
            let rate = spec
                .get("rate")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("site {name}: missing rate"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("site {name}: rate {rate} is not a probability"));
            }
            let sched = spec.get("schedule");
            let kind = sched
                .and_then(|s| s.get("kind"))
                .and_then(Json::as_str)
                .unwrap_or("always");
            let field = |key: &str| sched.and_then(|s| s.get(key)).and_then(Json::as_u64);
            let schedule = match kind {
                "always" => Schedule::Always,
                "one_shot" => Schedule::OneShot {
                    at: field("at").ok_or_else(|| format!("site {name}: one_shot needs at"))?,
                },
                "burst" => Schedule::Burst {
                    start: field("start")
                        .ok_or_else(|| format!("site {name}: burst needs start"))?,
                    len: field("len").ok_or_else(|| format!("site {name}: burst needs len"))?,
                },
                other => return Err(format!("site {name}: unknown schedule kind {other:?}")),
            };
            plan.sites[site as usize] = Some(SiteSpec { rate, schedule });
        }
        Ok(plan)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Whether a plan is installed. One relaxed atomic load — the only cost
/// fault-capable code pays when injection is off.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed plan, if any.
#[must_use]
pub fn active_plan() -> Option<Arc<FaultPlan>> {
    if !enabled() {
        return None;
    }
    CURRENT
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Installs `plan` process-wide until the returned guard drops (guards
/// nest LIFO, restoring the previously installed plan). Like
/// `telemetry::install`, concurrent installers must serialize themselves.
#[must_use]
pub fn install(plan: Arc<FaultPlan>) -> PlanGuard {
    let mut cur = CURRENT.write().unwrap_or_else(PoisonError::into_inner);
    let prev = cur.replace(plan);
    ENABLED.store(true, Ordering::Relaxed);
    PlanGuard { prev }
}

/// Guard returned by [`install`]; restores the previous plan (and the
/// enabled flag) when dropped.
#[derive(Debug)]
pub struct PlanGuard {
    prev: Option<Arc<FaultPlan>>,
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        let mut cur = CURRENT.write().unwrap_or_else(PoisonError::into_inner);
        ENABLED.store(self.prev.is_some(), Ordering::Relaxed);
        *cur = self.prev.take();
    }
}

/// A per-consumer decision stream over a plan.
///
/// Each consumer (one controller, one engine run) owns a session; the
/// session numbers that consumer's decisions per site from zero, so the
/// decision sequence depends only on the consumer's own internally
/// deterministic behavior — never on thread scheduling across consumers.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: Arc<FaultPlan>,
    decisions: [u64; N_SITES],
    injected: [u64; N_SITES],
}

impl FaultSession {
    /// A session over the installed plan, or `None` when injection is off.
    #[must_use]
    pub fn begin() -> Option<FaultSession> {
        active_plan().map(FaultSession::with_plan)
    }

    /// A session over an explicit plan (bypasses the global installer —
    /// the thread-safe choice for tests and parallel harnesses).
    #[must_use]
    pub fn with_plan(plan: Arc<FaultPlan>) -> FaultSession {
        FaultSession {
            plan,
            decisions: [0; N_SITES],
            injected: [0; N_SITES],
        }
    }

    /// The plan this session draws from.
    #[must_use]
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Whether the next decision at `site` fires, advancing the site's
    /// decision counter.
    pub fn fires(&mut self, site: Site) -> bool {
        let idx = self.decisions[site as usize];
        self.decisions[site as usize] += 1;
        let hit = self.plan.fires(site, idx);
        if hit {
            self.injected[site as usize] += 1;
            note_fire(site, self.injected[site as usize]);
        }
        hit
    }

    /// Stateless keyed decision (see [`FaultPlan::fires`]) that still
    /// counts injections in this session's tallies.
    pub fn fires_keyed(&mut self, site: Site, key: u64) -> bool {
        let hit = self.plan.fires(site, key);
        if hit {
            self.injected[site as usize] += 1;
            note_fire(site, self.injected[site as usize]);
        }
        hit
    }

    /// Faults injected at `site` so far.
    #[must_use]
    pub fn injected(&self, site: Site) -> u64 {
        self.injected[site as usize]
    }

    /// Per-site injection tallies, indexed like [`Site::ALL`].
    #[must_use]
    pub fn injected_counts(&self) -> [u64; N_SITES] {
        self.injected
    }

    /// Total faults injected across all sites.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Per-site decision tallies, indexed like [`Site::ALL`] — together
    /// with [`injected_counts`](Self::injected_counts) this is the
    /// session's full persistable position in its decision streams.
    #[must_use]
    pub fn decision_counts(&self) -> [u64; N_SITES] {
        self.decisions
    }

    /// Rebuilds a session mid-stream from persisted tallies, so a
    /// recovered engine resumes drawing the *same* decision sequence an
    /// uninterrupted run would have drawn.
    #[must_use]
    pub fn restore(
        plan: Arc<FaultPlan>,
        decisions: [u64; N_SITES],
        injected: [u64; N_SITES],
    ) -> FaultSession {
        FaultSession {
            plan,
            decisions,
            injected,
        }
    }
}

/// Annotates the calling thread's innermost open tree span with the fault
/// activation: key `fault.<site>`, value = the session's running tally at
/// that site. Fault fires are decided by `(plan seed, site, index)` alone,
/// so stamping them onto timing-class spans cannot perturb simulation
/// state; when no span is open (or telemetry is off) this is a no-op.
fn note_fire(site: Site, nth: u64) {
    if telemetry::enabled() {
        telemetry::annotate(&format!("fault.{}", site.name()), nth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_round_trip() {
        for site in Site::ALL {
            assert_eq!(Site::from_name(site.name()), Some(site));
        }
        assert_eq!(Site::from_name("nope"), None);
    }

    #[test]
    fn shard_derivation_is_deterministic_and_independent() {
        let base = FaultPlan::uniform(0xC0FFEE, 0.5);
        let a = base.for_shard(3);
        // Same shard, same derived plan — replayable per-shard streams.
        assert_eq!(a, base.for_shard(3));
        // Site specs carry over unchanged; only the seed is reseeded.
        for site in Site::ALL {
            assert_eq!(a.site(site), base.site(site));
        }
        // Distinct shards (and the base plan) draw distinct streams.
        let seeds: std::collections::HashSet<u64> = (0..64)
            .map(|s| base.for_shard(s).seed)
            .chain([base.seed])
            .collect();
        assert_eq!(seeds.len(), 65);
    }

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new(1);
        for site in Site::ALL {
            for i in 0..100 {
                assert!(!p.fires(site, i));
            }
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_site_index() {
        let a = FaultPlan::uniform(42, 0.3);
        let b = FaultPlan::uniform(42, 0.3);
        for site in Site::ALL {
            for i in 0..1000 {
                assert_eq!(a.fires(site, i), b.fires(site, i));
            }
        }
    }

    #[test]
    fn different_seeds_decide_differently() {
        let a = FaultPlan::uniform(1, 0.5);
        let b = FaultPlan::uniform(2, 0.5);
        let diverging = (0..1000)
            .filter(|&i| a.fires(Site::TornRead, i) != b.fires(Site::TornRead, i))
            .count();
        assert!(
            diverging > 100,
            "only {diverging} of 1000 decisions diverge"
        );
    }

    #[test]
    fn rate_is_respected_statistically() {
        let p = FaultPlan::uniform(7, 0.2);
        let n = 50_000;
        let fired = (0..n).filter(|&i| p.fires(Site::DramBitFlip, i)).count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn zero_and_one_rates_are_exact() {
        let zero = FaultPlan::uniform(3, 0.0);
        let one = FaultPlan::uniform(3, 1.0);
        for i in 0..100 {
            assert!(!zero.fires(Site::TestPreempt, i));
            assert!(one.fires(Site::TestPreempt, i));
        }
    }

    #[test]
    fn one_shot_fires_exactly_once() {
        let p = FaultPlan::new(9).with_site(
            Site::EccUncorrectable,
            SiteSpec {
                rate: 0.5, // any positive rate: one-shots are deterministic
                schedule: Schedule::OneShot { at: 17 },
            },
        );
        let fired: Vec<u64> = (0..100)
            .filter(|&i| p.fires(Site::EccUncorrectable, i))
            .collect();
        assert_eq!(fired, vec![17]);
    }

    #[test]
    fn burst_limits_eligibility() {
        let p = FaultPlan::new(9).with_site(
            Site::TornRead,
            SiteSpec {
                rate: 1.0,
                schedule: Schedule::Burst { start: 10, len: 5 },
            },
        );
        let fired: Vec<u64> = (0..100).filter(|&i| p.fires(Site::TornRead, i)).collect();
        assert_eq!(fired, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn json_round_trip() {
        let p = FaultPlan::new(0xDEAD)
            .with_site(Site::TornRead, SiteSpec::rate(0.25))
            .with_site(
                Site::EccUncorrectable,
                SiteSpec {
                    rate: 1.0,
                    schedule: Schedule::OneShot { at: 3 },
                },
            )
            .with_site(
                Site::SimCmdDrop,
                SiteSpec {
                    rate: 0.5,
                    schedule: Schedule::Burst { start: 2, len: 8 },
                },
            );
        let text = p.to_json().emit();
        let back = FaultPlan::parse(&text).expect("round trip");
        assert_eq!(back, p);
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        assert!(FaultPlan::parse("{}").is_err(), "missing schema");
        let wrong = Json::obj().field("schema", "nope/v0").field("seed", 1u64);
        assert!(FaultPlan::parse(&wrong.emit()).is_err());
        let bad_site = Json::obj()
            .field("schema", SCHEMA)
            .field("seed", 1u64)
            .field(
                "sites",
                Json::obj().field("bogus.site", Json::obj().field("rate", 0.1)),
            );
        assert!(FaultPlan::parse(&bad_site.emit()).is_err());
        let bad_rate = Json::obj()
            .field("schema", SCHEMA)
            .field("seed", 1u64)
            .field(
                "sites",
                Json::obj().field("memcon.torn_read", Json::obj().field("rate", 1.5)),
            );
        assert!(FaultPlan::parse(&bad_rate.emit()).is_err());
    }

    #[test]
    fn session_counts_decisions_and_injections() {
        let mut s = FaultSession::with_plan(Arc::new(FaultPlan::uniform(5, 1.0)));
        assert!(s.fires(Site::TornRead));
        assert!(s.fires(Site::TornRead));
        assert!(
            s.fires_keyed(Site::DramBitFlip, u64::MAX),
            "rate 1.0 always fires"
        );
        assert_eq!(s.injected(Site::TornRead), 2);
        assert_eq!(s.injected(Site::DramBitFlip), 1);
        assert_eq!(s.total_injected(), 3);
    }

    #[test]
    fn sessions_replay_identically() {
        let plan = Arc::new(FaultPlan::uniform(11, 0.4));
        let mut a = FaultSession::with_plan(Arc::clone(&plan));
        let mut b = FaultSession::with_plan(plan);
        let da: Vec<bool> = (0..500).map(|_| a.fires(Site::TestPreempt)).collect();
        let db: Vec<bool> = (0..500).map(|_| b.fires(Site::TestPreempt)).collect();
        assert_eq!(da, db);
        assert_eq!(a.injected_counts(), b.injected_counts());
    }

    #[test]
    fn restored_session_continues_the_same_decision_stream() {
        let plan = Arc::new(FaultPlan::uniform(21, 0.4));
        let mut live = FaultSession::with_plan(Arc::clone(&plan));
        let first: Vec<bool> = (0..100).map(|_| live.fires(Site::StoreTornWrite)).collect();
        let mut resumed = FaultSession::restore(
            Arc::clone(&plan),
            live.decision_counts(),
            live.injected_counts(),
        );
        let tail_live: Vec<bool> = (0..100).map(|_| live.fires(Site::StoreTornWrite)).collect();
        let tail_resumed: Vec<bool> = (0..100)
            .map(|_| resumed.fires(Site::StoreTornWrite))
            .collect();
        assert_eq!(tail_live, tail_resumed);
        assert_eq!(live.injected_counts(), resumed.injected_counts());
        assert!(first.iter().any(|&b| b), "rate 0.4 fires in 100 draws");
    }

    #[test]
    fn install_gates_sessions_and_restores_lifo() {
        // The only test in this binary that installs plans, so it owns the
        // process-global state for its duration.
        assert!(!enabled());
        assert!(FaultSession::begin().is_none());
        let outer = Arc::new(FaultPlan::uniform(1, 0.1));
        let inner = Arc::new(FaultPlan::uniform(2, 0.2));
        {
            let _a = install(Arc::clone(&outer));
            assert!(enabled());
            assert_eq!(active_plan().as_deref(), Some(outer.as_ref()));
            {
                let _b = install(Arc::clone(&inner));
                assert_eq!(active_plan().as_deref(), Some(inner.as_ref()));
                assert!(FaultSession::begin().is_some());
            }
            assert_eq!(active_plan().as_deref(), Some(outer.as_ref()), "LIFO");
        }
        assert!(!enabled(), "guard restores the disabled state");
        assert!(active_plan().is_none());
    }
}
