//! Scrapes `METRICS`/`HEALTH`/`SERIES` over a real `TcpListener` on an
//! ephemeral port and asserts the line protocol is well formed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

use telemetry::health::{HealthMonitor, Rule, Severity};
use telemetry::{Class, Registry, ScrapeServer};

fn scrape(addr: SocketAddr, command: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{command}\n").as_bytes())
        .expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    reply.lines().map(str::to_string).collect()
}

#[test]
fn scrape_endpoint_speaks_well_formed_line_protocol() {
    let r = Arc::new(Registry::new());
    r.set_enabled(true);
    r.counter("t.scrape.hits", Class::Deterministic).add(42);
    r.counter("t.scrape.misses", Class::Deterministic).add(0);
    r.histogram("t.scrape.lat", Class::Deterministic, &[10, 100])
        .record(7);
    r.sample_point(1, &[("t.gauge", 9)]);

    let mut monitor = HealthMonitor::new(vec![Rule::delta_above(
        "scrape-smoke",
        Severity::Critical,
        "t.scrape.hits",
        0,
    )]);
    let point = r.timeseries_points().pop().expect("sampled point");
    assert_eq!(monitor.evaluate(&point), 1, "seed one alert");
    let monitor = Arc::new(Mutex::new(monitor));

    let server = ScrapeServer::start(Arc::clone(&r), Some(monitor), "127.0.0.1:0")
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    // METRICS: every line is `kind name value...` and the reply is
    // END-terminated.
    let metrics = scrape(addr, "METRICS");
    assert_eq!(metrics.last().map(String::as_str), Some("END"));
    let body = &metrics[..metrics.len() - 1];
    assert!(!body.is_empty());
    for line in body {
        let tokens: Vec<&str> = line.split(' ').collect();
        assert!(
            matches!(tokens[0], "counter" | "histogram" | "gauge"),
            "unexpected line kind: {line}"
        );
        match tokens[0] {
            "counter" | "gauge" => {
                assert_eq!(tokens.len(), 3, "malformed: {line}");
                tokens[2].parse::<u64>().expect("numeric value");
            }
            _ => {
                assert_eq!(tokens.len(), 4, "malformed: {line}");
                assert!(tokens[2].starts_with("count="));
                assert!(tokens[3].starts_with("sum="));
            }
        }
    }
    assert!(body.iter().any(|l| l == "counter t.scrape.hits 42"));
    assert!(body.iter().any(|l| l == "counter t.scrape.misses 0"));
    assert!(body
        .iter()
        .any(|l| l == "histogram t.scrape.lat count=1 sum=7"));
    assert!(body.iter().any(|l| l == "gauge t.gauge 9"));

    // HEALTH: summary line, one alert line, END.
    let health = scrape(addr, "HEALTH");
    assert_eq!(
        health.first().map(String::as_str),
        Some("health rules=1 epochs=1 alerts=1 dropped=0")
    );
    assert!(
        health[1].starts_with("alert 1 critical scrape-smoke observed=42"),
        "alert line malformed: {}",
        health[1]
    );
    assert_eq!(health.last().map(String::as_str), Some("END"));

    // SERIES: per-tick points for a named metric, zeros for unknown names.
    assert_eq!(
        scrape(addr, "SERIES t.scrape.hits"),
        vec!["point 1 42", "END"]
    );
    assert_eq!(
        scrape(addr, "SERIES no.such.metric"),
        vec!["point 1 0", "END"]
    );

    // Unknown commands answer ERR, still END-terminated.
    assert_eq!(scrape(addr, "BOGUS"), vec!["ERR unknown command", "END"]);

    server.shutdown();

    // The port actually closed: a fresh scrape must fail to connect or
    // read nothing.
    assert!(TcpStream::connect(addr).is_err() || scrape_is_dead(addr));
}

fn scrape_is_dead(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return true;
    };
    let _ = stream.write_all(b"METRICS\n");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap_or(0) == 0
}
