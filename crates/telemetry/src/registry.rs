//! Metric registry, the global/scoped current-registry machinery, and the
//! JSON report emitter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

use memutil::json::Json;

use crate::metrics::{Counter, Histogram, Span};
use crate::timeseries::{SamplePoint, TimeSeries, DEFAULT_TIMESERIES_CAPACITY};
use crate::trace::EventTrace;
use crate::trees::SpanTree;
use crate::Class;

/// Default event-trace capacity of a fresh registry.
const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Default span-tree node capacity of a fresh registry.
const DEFAULT_TREE_CAPACITY: usize = 1024;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, (Class, Arc<Counter>)>,
    histograms: BTreeMap<String, (Class, Arc<Histogram>)>,
    spans: BTreeMap<String, Arc<Span>>,
    /// Per-figure deltas of deterministic counters, in recording order.
    figures: Vec<(String, Vec<(String, u64)>)>,
}

/// A collection of named metrics sharing one enabled flag, exportable as
/// a JSON report with separated `deterministic` and `timing` sections.
///
/// Fresh registries are **disabled**; metrics bound from a disabled
/// registry stay registered but drop all updates until
/// [`Registry::set_enabled`] turns collection on.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    trace: Arc<EventTrace>,
    tree: Arc<SpanTree>,
    timeseries: Mutex<TimeSeries>,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, disabled registry with the default trace capacity.
    #[must_use]
    pub fn new() -> Registry {
        Registry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh, disabled registry retaining at most `capacity` trace
    /// events (floor 1).
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Registry {
        let enabled = Arc::new(AtomicBool::new(false));
        Registry {
            trace: Arc::new(EventTrace::new(Arc::clone(&enabled), capacity)),
            tree: Arc::new(SpanTree::new(Arc::clone(&enabled), DEFAULT_TREE_CAPACITY)),
            timeseries: Mutex::new(TimeSeries::new(DEFAULT_TIMESERIES_CAPACITY)),
            enabled,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether metrics bound to this registry record updates.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off for every metric bound to this
    /// registry, including handles bound earlier.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The named counter, registered with `class` on first use. The class
    /// of the first registration wins.
    pub fn counter(&self, name: &str, class: Class) -> Arc<Counter> {
        let mut inner = self.inner();
        if let Some((_, c)) = inner.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new(Arc::clone(&self.enabled)));
        inner
            .counters
            .insert(name.to_string(), (class, Arc::clone(&c)));
        c
    }

    /// The named histogram, created with `edges` (ascending inclusive
    /// upper bounds) on first use. The edges and class of the first
    /// registration win.
    pub fn histogram(&self, name: &str, class: Class, edges: &[u64]) -> Arc<Histogram> {
        let mut inner = self.inner();
        if let Some((_, h)) = inner.histograms.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(Arc::clone(&self.enabled), edges));
        inner
            .histograms
            .insert(name.to_string(), (class, Arc::clone(&h)));
        h
    }

    /// The named span timer (always [`Class::Timing`]).
    pub fn span(&self, name: &str) -> Arc<Span> {
        let mut inner = self.inner();
        if let Some(s) = inner.spans.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(Span::new(Arc::clone(&self.enabled)));
        inner.spans.insert(name.to_string(), Arc::clone(&s));
        s
    }

    /// The registry's bounded event trace.
    #[must_use]
    pub fn trace(&self) -> Arc<EventTrace> {
        Arc::clone(&self.trace)
    }

    /// The registry's causal span tree ([`Class::Timing`] data).
    #[must_use]
    pub fn tree(&self) -> Arc<SpanTree> {
        Arc::clone(&self.tree)
    }

    fn timeseries(&self) -> std::sync::MutexGuard<'_, TimeSeries> {
        self.timeseries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes an epoch/quantum-aligned [`SamplePoint`]: the delta of every
    /// deterministic counter since the previous sample plus the supplied
    /// instantaneous gauges, appended to the bounded time-series ring.
    ///
    /// Must be called from a deterministic synchronization point (a
    /// post-barrier fleet epoch loop, or a single-threaded engine at a
    /// quantum-window boundary) — the series lands in the report's
    /// `deterministic` section and is byte-diffed across `--jobs`.
    /// Returns `None` (recording nothing) when the registry is disabled.
    pub fn sample_point(&self, tick: u64, gauges: &[(&str, u64)]) -> Option<SamplePoint> {
        if !self.is_enabled() {
            return None;
        }
        let now = self.deterministic_counters();
        Some(self.timeseries().sample(tick, now, gauges))
    }

    /// Retained time-series points, oldest first.
    #[must_use]
    pub fn timeseries_points(&self) -> Vec<SamplePoint> {
        self.timeseries().points()
    }

    /// The last `n` retained time-series points, oldest first.
    #[must_use]
    pub fn timeseries_tail(&self, n: usize) -> Vec<SamplePoint> {
        self.timeseries().last_points(n)
    }

    /// `(tick, value)` pairs of one named counter-delta or gauge across
    /// the retained points.
    #[must_use]
    pub fn series(&self, name: &str) -> Vec<(u64, u64)> {
        self.timeseries().series(name)
    }

    /// Resizes the time-series ring (floor 1), evicting oldest points if
    /// the new capacity is smaller.
    pub fn set_timeseries_capacity(&self, capacity: usize) {
        self.timeseries().set_capacity(capacity);
    }

    /// Name/value snapshot of every deterministic-class counter, sorted
    /// by name. Pair with [`Registry::record_figure`] to attribute counts
    /// to one phase of a run.
    #[must_use]
    pub fn deterministic_counters(&self) -> Vec<(String, u64)> {
        self.inner()
            .counters
            .iter()
            .filter(|(_, (class, _))| *class == Class::Deterministic)
            .map(|(name, (_, c))| (name.clone(), c.get()))
            .collect()
    }

    /// `(name, count, sum)` snapshot of every deterministic-class
    /// histogram, sorted by name (the scrape endpoint's summary view).
    #[must_use]
    pub fn deterministic_histogram_stats(&self) -> Vec<(String, u64, u64)> {
        self.inner()
            .histograms
            .iter()
            .filter(|(_, (class, _))| *class == Class::Deterministic)
            .map(|(name, (_, h))| (name.clone(), h.count(), h.sum()))
            .collect()
    }

    /// Records the per-figure delta of every deterministic counter since
    /// the `since` snapshot (taken via [`Registry::deterministic_counters`]
    /// before the figure ran). Zero deltas are kept, so figure records
    /// have stable shape.
    pub fn record_figure(&self, figure: &str, since: &[(String, u64)]) {
        let before: BTreeMap<&str, u64> = since.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let deltas: Vec<(String, u64)> = self
            .deterministic_counters()
            .into_iter()
            .map(|(name, now)| {
                let was = before.get(name.as_str()).copied().unwrap_or(0);
                (name, now.saturating_sub(was))
            })
            .collect();
        self.inner().figures.push((figure.to_string(), deltas));
    }

    /// Zeroes every metric and clears figure records and the trace.
    /// Registered names survive, so bound handles stay valid.
    pub fn reset(&self) {
        let mut inner = self.inner();
        for (_, c) in inner.counters.values() {
            c.reset();
        }
        for (_, h) in inner.histograms.values() {
            h.reset();
        }
        for s in inner.spans.values() {
            s.reset();
        }
        inner.figures.clear();
        self.trace.clear();
        self.tree.clear();
        self.timeseries().clear();
    }

    /// Emits the full report:
    ///
    /// ```json
    /// {
    ///   "schema": "memcon-telemetry/v1",
    ///   "deterministic": { "counters": {…}, "histograms": {…}, "figures": […],
    ///                      "timeseries": { "points": […], … } },
    ///   "timing": { "counters": {…}, "spans": {…}, "span_tree": {…}, "par": {…},
    ///               "trace": { "events": […], "recorded": N, "dropped_events": M } }
    /// }
    /// ```
    ///
    /// The `deterministic` section is byte-identical across `--jobs`
    /// settings for the same workload; the `timing` section is not and is
    /// excluded from determinism diffs.
    #[must_use]
    pub fn report(&self) -> Json {
        let inner = self.inner();

        let mut det_counters = Json::obj();
        let mut timing_counters = Json::obj();
        for (name, (class, c)) in &inner.counters {
            match class {
                Class::Deterministic => det_counters.set(name, c.get()),
                Class::Timing => timing_counters.set(name, c.get()),
            }
        }

        let mut det_hists = Json::obj();
        let mut timing_hists = Json::obj();
        for (name, (class, h)) in &inner.histograms {
            let json = Json::obj()
                .field("edges", h.edges().to_vec())
                .field("buckets", h.bucket_counts())
                .field("count", h.count())
                .field("sum", h.sum());
            match class {
                Class::Deterministic => det_hists.set(name, json),
                Class::Timing => timing_hists.set(name, json),
            }
        }

        let mut figures = Json::arr();
        for (figure, deltas) in &inner.figures {
            let mut counters = Json::obj();
            for (name, delta) in deltas {
                counters.set(name, *delta);
            }
            figures = figures.push(
                Json::obj()
                    .field("figure", figure.as_str())
                    .field("counters", counters),
            );
        }

        let mut spans = Json::obj();
        for (name, s) in &inner.spans {
            spans.set(
                name,
                Json::obj()
                    .field("count", s.count())
                    .field("total_ns", s.total_ns()),
            );
        }

        let pool = memutil::par::pool_stats();
        let par = Json::obj()
            .field("scopes", pool.scopes)
            .field("inline_runs", pool.inline_runs)
            .field("chunks_run", pool.chunks_run)
            .field("chunks_stolen", pool.chunks_stolen)
            .field("worker_chunks", pool.worker_chunks.to_vec());

        let mut events = Json::arr();
        for e in self.trace.snapshot() {
            events = events.push(
                Json::obj()
                    .field("seq", e.seq)
                    .field("label", e.label.as_str())
                    .field("value", e.value),
            );
        }
        let trace = Json::obj()
            .field("events", events)
            .field("recorded", self.trace.recorded())
            .field("dropped_events", self.trace.dropped());

        let mut tree_nodes = Json::arr();
        for n in self.tree.snapshot() {
            tree_nodes = tree_nodes.push(n.to_json());
        }
        let span_tree = Json::obj()
            .field("nodes", tree_nodes)
            .field("dropped", self.tree.dropped());

        let timeseries = {
            let ts = self.timeseries();
            let mut points = Json::arr();
            for p in ts.points() {
                points = points.push(p.to_json());
            }
            Json::obj()
                .field("schema", crate::timeseries::TIMESERIES_SCHEMA)
                .field("capacity", ts.capacity() as u64)
                .field("dropped_points", ts.dropped())
                .field("points", points)
        };

        Json::obj()
            .field("schema", crate::SCHEMA)
            .field(
                "deterministic",
                Json::obj()
                    .field("counters", det_counters)
                    .field("histograms", det_hists)
                    .field("figures", figures)
                    .field("timeseries", timeseries),
            )
            .field(
                "timing",
                Json::obj()
                    .field("counters", timing_counters)
                    .field("histograms", timing_hists)
                    .field("spans", spans)
                    .field("span_tree", span_tree)
                    .field("par", par)
                    .field("trace", trace),
            )
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
static CURRENT: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// The lazily created process-global registry (disabled until something
/// calls [`Registry::set_enabled`] on it).
#[must_use]
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// The registry instrumentation currently records into: the innermost
/// [`install`]ed registry, else [`global`]. The scope is process-wide
/// (pool workers and the caller observe the same current registry).
#[must_use]
pub fn current() -> Arc<Registry> {
    if let Some(r) = CURRENT
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        return Arc::clone(r);
    }
    global()
}

/// Makes `registry` the process-wide current registry until the returned
/// guard drops (guards nest LIFO). Callers that install concurrently from
/// multiple threads must serialize themselves — the experiments CLI and
/// the test suites take a lock around telemetry-scoped sections.
#[must_use]
pub fn install(registry: Arc<Registry>) -> ScopeGuard {
    let mut cur = CURRENT.write().unwrap_or_else(PoisonError::into_inner);
    ScopeGuard {
        prev: cur.replace(registry),
    }
}

/// Guard returned by [`install`]; restores the previously current
/// registry when dropped.
pub struct ScopeGuard {
    prev: Option<Arc<Registry>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let mut cur = CURRENT.write().unwrap_or_else(PoisonError::into_inner);
        *cur = self.prev.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_registry() -> Registry {
        let r = Registry::new();
        r.set_enabled(true);
        r
    }

    #[test]
    fn counters_register_once_and_share_state() {
        let r = enabled_registry();
        let a = r.counter("x.y.z", Class::Deterministic);
        let b = r.counter("x.y.z", Class::Timing); // first class wins
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x.y.z", Class::Deterministic).get(), 5);
        let report = r.report();
        let det = report.get("deterministic").and_then(|d| d.get("counters"));
        assert_eq!(
            det.and_then(|c| c.get("x.y.z")).and_then(Json::as_u64),
            Some(5)
        );
    }

    #[test]
    fn report_separates_deterministic_and_timing() {
        let r = enabled_registry();
        r.counter("det.c", Class::Deterministic).add(1);
        r.counter("tim.c", Class::Timing).add(2);
        r.histogram("det.h", Class::Deterministic, &[10]).record(4);
        r.span("tim.s").record_ns(7);
        r.trace().record("evt", 1);
        let report = r.report();
        let det = report.get("deterministic").expect("deterministic");
        let tim = report.get("timing").expect("timing");
        assert!(det.get("counters").and_then(|c| c.get("det.c")).is_some());
        assert!(det.get("counters").and_then(|c| c.get("tim.c")).is_none());
        assert!(tim.get("counters").and_then(|c| c.get("tim.c")).is_some());
        assert!(det.get("histograms").and_then(|h| h.get("det.h")).is_some());
        assert!(tim.get("spans").and_then(|s| s.get("tim.s")).is_some());
        assert!(tim.get("par").is_some());
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some(crate::SCHEMA)
        );
    }

    #[test]
    fn histogram_report_carries_edges_buckets_count_sum() {
        let r = enabled_registry();
        let h = r.histogram("h", Class::Deterministic, &[1, 2]);
        h.record(1);
        h.record(5);
        let report = r.report();
        let hist = report
            .get("deterministic")
            .and_then(|d| d.get("histograms"))
            .and_then(|h| h.get("h"))
            .expect("histogram entry");
        assert_eq!(
            hist.get("edges"),
            Some(&Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))
        );
        assert_eq!(
            hist.get("buckets"),
            Some(&Json::Arr(vec![
                Json::UInt(1),
                Json::UInt(0),
                Json::UInt(1)
            ]))
        );
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn figure_records_are_deltas_since_the_snapshot() {
        let r = enabled_registry();
        let c = r.counter("a", Class::Deterministic);
        c.add(10);
        let snap = r.deterministic_counters();
        c.add(5);
        r.counter("b", Class::Deterministic).add(2);
        r.record_figure("fig4", &snap);
        let report = r.report();
        let figures = report.get("deterministic").and_then(|d| d.get("figures"));
        let Some(Json::Arr(figs)) = figures else {
            panic!("figures array missing");
        };
        assert_eq!(figs.len(), 1);
        let counters = figs[0].get("counters").expect("counters");
        assert_eq!(counters.get("a").and_then(Json::as_u64), Some(5));
        assert_eq!(counters.get("b").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn reset_zeroes_values_but_keeps_registrations() {
        let r = enabled_registry();
        let c = r.counter("c", Class::Deterministic);
        c.add(4);
        r.histogram("h", Class::Deterministic, &[1]).record(1);
        r.trace().record("evt", 1);
        r.record_figure("f", &[]);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(r.histogram("h", Class::Deterministic, &[1]).count(), 0);
        assert!(r.trace().snapshot().is_empty());
        c.add(1);
        assert_eq!(c.get(), 1, "handle still live after reset");
    }

    #[test]
    fn install_swaps_and_restores_the_current_registry() {
        // Serialized against other tests touching CURRENT by the fact
        // that this is the only test in this binary that installs.
        let outer = Arc::new(enabled_registry());
        let inner = Arc::new(enabled_registry());
        {
            let _a = install(Arc::clone(&outer));
            assert!(Arc::ptr_eq(&current(), &outer));
            {
                let _b = install(Arc::clone(&inner));
                assert!(Arc::ptr_eq(&current(), &inner));
            }
            assert!(Arc::ptr_eq(&current(), &outer), "LIFO restore");
        }
        assert!(
            !Arc::ptr_eq(&current(), &outer) && !Arc::ptr_eq(&current(), &inner),
            "global restored after the outermost guard drops"
        );
    }

    #[test]
    fn sample_point_records_deltas_and_lands_in_the_report() {
        let r = enabled_registry();
        let c = r.counter("x.y.z", Class::Deterministic);
        c.add(10);
        let p1 = r.sample_point(1, &[("g.one", 4)]).expect("enabled");
        assert_eq!(p1.value("x.y.z"), 10);
        c.add(5);
        let p2 = r.sample_point(2, &[("g.one", 6)]).expect("enabled");
        assert_eq!(p2.value("x.y.z"), 5, "second point is a delta");
        assert_eq!(p2.value("g.one"), 6);
        assert_eq!(r.series("x.y.z"), vec![(1, 10), (2, 5)]);
        let report = r.report();
        let ts = report
            .get("deterministic")
            .and_then(|d| d.get("timeseries"))
            .expect("timeseries section");
        assert_eq!(
            ts.get("schema").and_then(Json::as_str),
            Some(crate::timeseries::TIMESERIES_SCHEMA)
        );
        let Some(Json::Arr(points)) = ts.get("points") else {
            panic!("points array missing");
        };
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[1]
                .get("counters")
                .and_then(|c| c.get("x.y.z"))
                .and_then(Json::as_u64),
            Some(5)
        );
    }

    #[test]
    fn sample_point_is_a_noop_when_disabled() {
        let r = Registry::new();
        r.counter("x.y.z", Class::Deterministic);
        assert!(r.sample_point(1, &[]).is_none());
        assert!(r.timeseries_points().is_empty());
    }

    #[test]
    fn report_carries_trace_and_tree_metadata() {
        let r = enabled_registry();
        r.trace().record("evt", 1);
        drop(r.tree().open("t.span"));
        let report = r.report();
        let tim = report.get("timing").expect("timing");
        let trace = tim.get("trace").expect("trace object");
        assert_eq!(trace.get("recorded").and_then(Json::as_u64), Some(1));
        assert_eq!(trace.get("dropped_events").and_then(Json::as_u64), Some(0));
        let tree = tim.get("span_tree").expect("span_tree");
        assert_eq!(tree.get("dropped").and_then(Json::as_u64), Some(0));
        let Some(Json::Arr(nodes)) = tree.get("nodes") else {
            panic!("nodes array missing");
        };
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].get("name").and_then(Json::as_str), Some("t.span"));
    }

    #[test]
    fn disabled_registry_report_is_empty_but_well_formed() {
        let r = Registry::new();
        r.counter("c", Class::Deterministic).add(9);
        let report = r.report();
        let counters = report
            .get("deterministic")
            .and_then(|d| d.get("counters"))
            .expect("counters");
        assert_eq!(counters.get("c").and_then(Json::as_u64), Some(0));
    }
}
