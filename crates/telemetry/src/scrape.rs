//! Minimal read-only line-protocol scrape endpoint.
//!
//! [`ScrapeServer`] binds a std `TcpListener` and serves three commands,
//! one request per connection, newline-terminated:
//!
//! ```text
//! METRICS          -> counter <name> <value>
//!                     histogram <name> count=<n> sum=<s>
//!                     gauge <name> <value>            (from the latest sample point)
//!                     END
//! HEALTH           -> health rules=<n> epochs=<n> alerts=<n> dropped=<n>
//!                     alert <epoch> <severity> <rule> observed=<x> threshold=<y>
//!                     END
//! SERIES <name>    -> point <tick> <value>
//!                     END
//! ```
//!
//! Unknown commands answer `ERR unknown command` followed by `END`. The
//! server is strictly read-only — it cannot mutate the registry or the
//! monitor — so pointing `xtask top` at a running soak observes without
//! perturbing. The accept loop runs on one plain thread (this is I/O
//! plumbing, not simulation work, so it stays off `memutil::par` and out
//! of every determinism-sensitive path).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::health::HealthMonitor;
use crate::Registry;

/// A running scrape endpoint; shuts down when dropped or via
/// [`ScrapeServer::shutdown`].
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving scrapes of `registry` and, when given, `health`.
    pub fn start(
        registry: Arc<Registry>,
        health: Option<Arc<Mutex<HealthMonitor>>>,
        addr: &str,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        // memlint: allow(thread-outside-par): accept-loop I/O thread, not simulation work
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = serve_one(stream, &registry, health.as_deref());
                }
            }
        });
        Ok(ScrapeServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one(
    stream: TcpStream,
    registry: &Registry,
    health: Option<&Mutex<HealthMonitor>>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut out = stream;
    let reply = respond(line.trim(), registry, health);
    out.write_all(reply.as_bytes())?;
    out.flush()
}

/// Builds the full reply (including the trailing `END` line) for one
/// command line. Split out from the socket plumbing so tests can drive
/// the protocol without a listener.
#[must_use]
pub fn respond(
    command: &str,
    registry: &Registry,
    health: Option<&Mutex<HealthMonitor>>,
) -> String {
    let mut reply = String::new();
    let mut parts = command.split_whitespace();
    match parts.next() {
        Some("METRICS") => {
            for (name, value) in registry.deterministic_counters() {
                reply.push_str(&format!("counter {name} {value}\n"));
            }
            for (name, count, sum) in registry.deterministic_histogram_stats() {
                reply.push_str(&format!("histogram {name} count={count} sum={sum}\n"));
            }
            if let Some(point) = registry.timeseries_tail(1).pop() {
                for (name, value) in &point.gauges {
                    reply.push_str(&format!("gauge {name} {value}\n"));
                }
            }
        }
        Some("HEALTH") => match health {
            Some(monitor) => {
                let m = monitor.lock().unwrap_or_else(PoisonError::into_inner);
                reply.push_str(&format!(
                    "health rules={} epochs={} alerts={} dropped={}\n",
                    m.rules().len(),
                    m.epochs_evaluated(),
                    m.alerts().len(),
                    m.dropped_alerts()
                ));
                for alert in m.alerts() {
                    reply.push_str(&alert.line());
                    reply.push('\n');
                }
            }
            None => reply.push_str("health rules=0 epochs=0 alerts=0 dropped=0\n"),
        },
        Some("SERIES") => match parts.next() {
            Some(name) => {
                for (tick, value) in registry.series(name) {
                    reply.push_str(&format!("point {tick} {value}\n"));
                }
            }
            None => reply.push_str("ERR SERIES needs a name\n"),
        },
        _ => reply.push_str("ERR unknown command\n"),
    }
    reply.push_str("END\n");
    reply
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Class;

    fn registry() -> Registry {
        let r = Registry::new();
        r.set_enabled(true);
        r
    }

    #[test]
    fn metrics_reply_lists_counters_histograms_and_gauges() {
        let r = registry();
        r.counter("a.b.c", Class::Deterministic).add(5);
        r.histogram("a.b.h", Class::Deterministic, &[10]).record(4);
        r.sample_point(1, &[("g.x", 9)]);
        let reply = respond("METRICS", &r, None);
        assert!(reply.contains("counter a.b.c 5\n"));
        assert!(reply.contains("histogram a.b.h count=1 sum=4\n"));
        assert!(reply.contains("gauge g.x 9\n"));
        assert!(reply.ends_with("END\n"));
    }

    #[test]
    fn series_reply_walks_the_ring() {
        let r = registry();
        let c = r.counter("a.b.c", Class::Deterministic);
        c.add(2);
        r.sample_point(1, &[]);
        c.add(3);
        r.sample_point(2, &[]);
        let reply = respond("SERIES a.b.c", &r, None);
        assert_eq!(reply, "point 1 2\npoint 2 3\nEND\n");
    }

    #[test]
    fn health_reply_without_monitor_is_well_formed() {
        let r = registry();
        let reply = respond("HEALTH", &r, None);
        assert_eq!(reply, "health rules=0 epochs=0 alerts=0 dropped=0\nEND\n");
    }

    #[test]
    fn unknown_command_errs() {
        let r = registry();
        assert_eq!(respond("BOGUS", &r, None), "ERR unknown command\nEND\n");
        assert_eq!(
            respond("SERIES", &r, None),
            "ERR SERIES needs a name\nEND\n"
        );
    }
}
