//! Deterministic telemetry: counters, histograms, span timers, and a
//! bounded event trace, exported as structured JSON.
//!
//! The subsystem exists to answer "why was this sweep slow / this
//! prediction wrong" without perturbing the reproduction's core contract:
//! **figure outputs are bit-identical at any `--jobs` setting**. Every
//! metric therefore carries a [`Class`]:
//!
//! * [`Class::Deterministic`] — values derived purely from simulation
//!   state (commands issued, PRIL outcomes, memo hits, rows evaluated).
//!   Counter addition commutes, and histograms bucket values that are
//!   themselves deterministic, so these sections of a report are
//!   byte-identical across worker counts and are byte-diffed by the
//!   `xtask` determinism gate.
//! * [`Class::Timing`] — wall-clock span durations, pool scheduling
//!   counters ([`memutil::par::pool_stats`]), and the event trace. These
//!   legitimately vary run to run and live in a separate `timing` report
//!   section that the gate ignores.
//!
//! # Registry model
//!
//! Metrics live in a [`Registry`]. A lazily created process [`global`]
//! registry backs the default path; [`install`] swaps in a scoped registry
//! (restored when the returned guard drops) so tests and the experiments
//! CLI can collect into a private registry without touching global state
//! left behind by other code. Instrumentation sites use either the free
//! helpers ([`count`], [`observe`], [`span`], [`trace_event`]) or bind
//! `Arc` metric handles once and update them directly on hot-ish paths.
//!
//! # Cost when disabled
//!
//! Telemetry is **off by default**. Every entry point checks an atomic
//! flag first, instrumented crates hoist the check out of their kernels,
//! and no allocation or locking happens on the disabled path — the
//! `xtask obs overhead` gate holds the instrumented
//! `evaluate_module_1bank` kernel to <2% overhead.
//!
//! # Live observability plane
//!
//! Run-end reports answer questions after the fact; the live plane
//! answers them *during* a soak. The registry carries an epoch-aligned
//! time-series ring ([`Registry::sample_point`] — deterministic-counter
//! deltas plus gauges, sampled only at barriers so the series itself is
//! [`Class::Deterministic`] data), a causal span tree
//! ([`tree_span`]/[`annotate`] — parent/child wall-clock spans,
//! [`Class::Timing`]), a declarative SLO monitor with a flight recorder
//! ([`health`]), and a read-only TCP scrape endpoint ([`ScrapeServer`])
//! speaking a minimal line protocol (`METRICS`, `HEALTH`,
//! `SERIES <name>`), viewed with `xtask top`.
//!
//! # Naming
//!
//! Metric names follow `crate.component.metric`, e.g.
//! `memsim.ctrl.trrd_stalls` or `memcon.pril.candidates`. Tree span
//! names use two segments (`fleet.epoch`, `memcon.run`).

#![warn(missing_docs)]

pub mod health;
mod metrics;
mod registry;
mod scrape;
mod timeseries;
mod trace;
mod trees;

pub use health::{flight_record, HealthMonitor, FLIGHTREC_SCHEMA};
pub use metrics::{Counter, Histogram, Span, SpanGuard};
pub use registry::{current, global, install, Registry, ScopeGuard};
pub use scrape::{respond, ScrapeServer};
pub use timeseries::{SamplePoint, TIMESERIES_SCHEMA};
pub use trace::{Event, EventTrace};
pub use trees::{SpanNode, SpanTree, TreeGuard};

/// Determinism class of a metric — decides which report section it lands
/// in and whether the determinism gate byte-diffs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Derived purely from simulation state: bit-identical across
    /// `--jobs` settings, byte-diffed by the determinism gate.
    Deterministic,
    /// Wall-clock or scheduling dependent: excluded from the gate.
    Timing,
}

/// Report schema identifier emitted by [`Registry::report`].
pub const SCHEMA: &str = "memcon-telemetry/v1";

/// Whether the current registry is collecting. Instrumented code hoists
/// this check outside its hot loops; everything below it may assume an
/// enabled registry.
#[must_use]
pub fn enabled() -> bool {
    registry::current().is_enabled()
}

/// Adds `n` to the named [`Class::Deterministic`] counter on the current
/// registry. Registers the counter even when `n == 0`, so report shape
/// does not depend on which code paths happened to fire. No-op when
/// telemetry is disabled.
pub fn count(name: &str, n: u64) {
    let r = registry::current();
    if r.is_enabled() {
        r.counter(name, Class::Deterministic).add(n);
    }
}

/// Adds `n` to the named [`Class::Timing`] counter on the current
/// registry. No-op when telemetry is disabled.
pub fn count_timing(name: &str, n: u64) {
    let r = registry::current();
    if r.is_enabled() {
        r.counter(name, Class::Timing).add(n);
    }
}

/// Records `value` in the named [`Class::Deterministic`] histogram on the
/// current registry, creating it with `edges` (ascending inclusive upper
/// bounds) on first use. No-op when telemetry is disabled.
pub fn observe(name: &str, edges: &[u64], value: u64) {
    let r = registry::current();
    if r.is_enabled() {
        r.histogram(name, Class::Deterministic, edges).record(value);
    }
}

/// Folds pre-aggregated bucket counts into the named
/// [`Class::Deterministic`] histogram, creating it with `edges` on first
/// use (see [`Histogram::merge_counts`]). Lets long-running engines
/// accumulate distribution state in plain fields — cheap, and trivially
/// persistable by the durable store — and flush it once at run end with a
/// result identical to per-sample [`observe`] calls. No-op when telemetry
/// is disabled.
pub fn observe_merged(name: &str, edges: &[u64], buckets: &[u64], count: u64, sum: u64) {
    let r = registry::current();
    if r.is_enabled() {
        r.histogram(name, Class::Deterministic, edges)
            .merge_counts(buckets, count, sum);
    }
}

/// Records `value` in the named [`Class::Timing`] histogram on the
/// current registry, creating it with `edges` on first use. Timing
/// histograms live in the report's `timing` section, which the
/// determinism gate ignores — use for wall-clock-derived distributions
/// (e.g. per-shard step latencies). No-op when telemetry is disabled.
pub fn observe_timing(name: &str, edges: &[u64], value: u64) {
    let r = registry::current();
    if r.is_enabled() {
        r.histogram(name, Class::Timing, edges).record(value);
    }
}

/// Runs `f` and returns its result together with the elapsed wall-clock
/// time in nanoseconds. This is the sanctioned wall-clock read for other
/// crates: the workspace lint forbids `Instant::now` outside
/// `crates/telemetry`, so latency measurement routes through here (and the
/// caller must file the duration as [`Class::Timing`] data only).
pub fn time_ns<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let start = std::time::Instant::now();
    let result = f();
    (result, start.elapsed().as_nanos() as u64)
}

/// Starts a wall-clock span on the current registry; the elapsed time is
/// recorded (as [`Class::Timing`] data) when the returned guard drops.
/// Returns an inert guard when telemetry is disabled.
#[must_use]
pub fn span(name: &str) -> SpanGuard {
    let r = registry::current();
    if r.is_enabled() {
        r.span(name).start()
    } else {
        SpanGuard::disabled()
    }
}

/// Appends an event to the current registry's bounded trace ring
/// ([`Class::Timing`] data). No-op when telemetry is disabled.
pub fn trace_event(label: &str, value: u64) {
    let r = registry::current();
    if r.is_enabled() {
        r.trace().record(label, value);
    }
}

/// Opens a causal span in the current registry's span tree, nested under
/// this thread's innermost open tree span ([`Class::Timing`] data). The
/// node closes when the returned guard drops. Inert when disabled.
#[must_use]
pub fn tree_span(name: &str) -> TreeGuard {
    let r = registry::current();
    if r.is_enabled() {
        r.tree().open(name)
    } else {
        TreeGuard::disabled()
    }
}

/// Attaches `(key, value)` to this thread's innermost open tree span —
/// how fault activations and other context annotate the covering span
/// without plumbing. No-op when disabled or no span is open here.
pub fn annotate(key: &str, value: u64) {
    let r = registry::current();
    if r.is_enabled() {
        r.tree().annotate(key, value);
    }
}

/// Takes an epoch/quantum-aligned time-series sample on the current
/// registry (see [`Registry::sample_point`]): deterministic-counter
/// deltas since the previous sample plus caller-supplied gauges. Must be
/// called from a deterministic synchronization point only. Returns `None`
/// when telemetry is disabled.
pub fn sample_point(tick: u64, gauges: &[(&str, u64)]) -> Option<SamplePoint> {
    registry::current().sample_point(tick, gauges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn free_helpers_are_noops_when_disabled() {
        let r = Arc::new(Registry::new());
        let _scope = install(Arc::clone(&r));
        assert!(!enabled());
        count("t.free.counter", 5);
        observe("t.free.hist", &[1, 2], 1);
        trace_event("t.free.event", 1);
        drop(span("t.free.span"));
        let report = r.report();
        let det = report.get("deterministic").expect("section");
        assert_eq!(det.get("counters"), Some(&memutil::json::Json::obj()));
    }

    #[test]
    fn free_helpers_record_on_the_installed_registry() {
        let r = Arc::new(Registry::new());
        r.set_enabled(true);
        let _scope = install(Arc::clone(&r));
        assert!(enabled());
        count("t.free.counter", 2);
        count("t.free.counter", 3);
        count("t.free.zero", 0);
        count_timing("t.free.timing", 7);
        observe("t.free.hist", &[10, 20], 15);
        trace_event("t.free.event", 9);
        assert_eq!(r.counter("t.free.counter", Class::Deterministic).get(), 5);
        // Zero-value counters still register (stable report shape).
        assert_eq!(r.counter("t.free.zero", Class::Deterministic).get(), 0);
        assert_eq!(r.counter("t.free.timing", Class::Timing).get(), 7);
        assert_eq!(
            r.histogram("t.free.hist", Class::Deterministic, &[10, 20])
                .count(),
            1
        );
        assert_eq!(r.trace().snapshot().len(), 1);
    }

    #[test]
    fn spans_accumulate_wall_clock_time() {
        let r = Arc::new(Registry::new());
        r.set_enabled(true);
        let _scope = install(Arc::clone(&r));
        for _ in 0..3 {
            let _g = span("t.free.span");
        }
        let s = r.span("t.free.span");
        assert_eq!(s.count(), 3);
    }
}
