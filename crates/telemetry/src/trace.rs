//! A bounded ring-buffer event trace.
//!
//! The trace answers "what happened *around* the anomaly" — the last N
//! noteworthy events (figure started, snapshot written, gate tripped…)
//! with a global sequence number so dropped history is detectable. Event
//! order depends on thread interleaving, so the trace is always
//! [`crate::Class::Timing`] data and never enters a determinism diff.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (0-based, never reused; gaps at the front
    /// of a snapshot mean older events were evicted).
    pub seq: u64,
    /// Free-form label, conventionally `crate.component.event`.
    pub label: String,
    /// Event payload.
    pub value: u64,
}

/// Fixed-capacity ring of recent [`Event`]s; recording evicts the oldest
/// entry once full.
#[derive(Debug)]
pub struct EventTrace {
    enabled: Arc<AtomicBool>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl EventTrace {
    pub(crate) fn new(enabled: Arc<AtomicBool>, capacity: usize) -> EventTrace {
        let capacity = capacity.max(1);
        EventTrace {
            enabled,
            capacity,
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends an event, evicting the oldest when the ring is full.
    /// No-op when the owning registry is disabled.
    pub fn record(&self, label: &str, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event {
            seq,
            label: label.to_string(),
            value,
        });
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring to make room for newer ones. Surfaced
    /// in reports so a truncated trace is never mistaken for a complete
    /// one.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn clear(&self) {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.next_seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(capacity: usize) -> EventTrace {
        EventTrace::new(Arc::new(AtomicBool::new(true)), capacity)
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let t = trace(3);
        for i in 0..5u64 {
            t.record("evt", i);
        }
        let events = t.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest entries evicted, order preserved"
        );
        assert_eq!(
            events.iter().map(|e| e.value).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(t.recorded(), 5, "eviction does not lose the count");
        assert_eq!(t.dropped(), 2, "evictions are counted, not silent");
    }

    #[test]
    fn dropped_counter_stays_zero_without_overflow() {
        let t = trace(8);
        for i in 0..8u64 {
            t.record("evt", i);
        }
        assert_eq!(t.dropped(), 0);
        t.record("evt", 8);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let t = trace(0);
        t.record("a", 1);
        t.record("b", 2);
        let events = t.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "b");
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = EventTrace::new(Arc::new(AtomicBool::new(false)), 4);
        t.record("evt", 1);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn clear_resets_sequence_numbers() {
        let t = trace(2);
        t.record("evt", 1);
        t.record("evt", 2);
        t.record("evt", 3);
        assert_eq!(t.dropped(), 1);
        t.clear();
        t.record("evt", 2);
        assert_eq!(t.snapshot()[0].seq, 0);
        assert_eq!(t.dropped(), 0, "clear resets the dropped counter");
    }
}
