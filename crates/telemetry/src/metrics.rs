//! Atomic metric primitives: counters, fixed-bucket histograms, and span
//! timers.
//!
//! Every metric shares its owning registry's enabled flag, so disabling a
//! registry instantly quiesces handles that were bound while it was live.
//! All updates are relaxed atomics: counters and histograms only ever
//! *add*, and addition commutes, which is exactly why deterministic-class
//! values are independent of worker interleaving.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing, saturating `u64` counter.
///
/// Saturates at `u64::MAX` instead of wrapping: a pegged counter is an
/// obvious outlier in a report, a wrapped one is silent nonsense.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Counter {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (saturating). No-op when the owning registry is disabled.
    pub fn add(&self, n: u64) {
        if n == 0 || !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v` with `edges[i-1] < v <= edges[i]`
/// (ascending inclusive upper bounds); one extra overflow bucket catches
/// everything above the last edge. Also tracks the sample count and the
/// saturating sum, so a report can recover the mean.
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    edges: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>, edges: &[u64]) -> Histogram {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            enabled,
            edges: edges.into(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. No-op when the owning registry is disabled.
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self.edges.partition_point(|&e| e < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(value))
            });
    }

    /// Folds pre-aggregated bucket counts into this histogram in one shot.
    ///
    /// `buckets` pairs positionally with this histogram's buckets (extra
    /// source entries are dropped into the overflow bucket); `count` and
    /// `sum` are added verbatim. Lets an engine accumulate a histogram in
    /// plain fields during a run and flush it once at the end — keeping the
    /// per-sample hot path free of registry traffic and the merged result
    /// identical to having called [`Histogram::record`] per sample.
    pub fn merge_counts(&self, buckets: &[u64], count: u64, sum: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let last = self.buckets.len() - 1;
        for (i, &n) in buckets.iter().enumerate() {
            if n != 0 {
                self.buckets[i.min(last)].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(sum))
            });
    }

    /// The configured bucket upper bounds.
    #[must_use]
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// A snapshot of all bucket counts (`edges.len() + 1` entries, the
    /// last being the overflow bucket).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Aggregated wall-clock timer for one named region: invocation count and
/// saturating total nanoseconds. Always [`crate::Class::Timing`] — span
/// values never enter the deterministic report section.
#[derive(Debug)]
pub struct Span {
    enabled: Arc<AtomicBool>,
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Span {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Span {
        Span {
            enabled,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    /// Starts timing; the elapsed wall-clock time is recorded when the
    /// guard drops. Returns an inert guard when the registry is disabled.
    #[must_use]
    pub fn start(self: &Arc<Self>) -> SpanGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return SpanGuard::disabled();
        }
        SpanGuard {
            active: Some((Arc::clone(self), Instant::now())),
        }
    }

    /// Records one completed invocation of `ns` nanoseconds directly
    /// (used by the guard; exposed for tests and external timers).
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .total_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(ns))
            });
    }

    /// Number of completed invocations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total recorded nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`Span::start`]; records the elapsed time into
/// its span on drop. The disabled variant does nothing.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Arc<Span>, Instant)>,
}

impl SpanGuard {
    /// An inert guard: timing disabled, drop is free.
    #[must_use]
    pub fn disabled() -> SpanGuard {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((span, started)) = self.active.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            span.record_ns(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(true))
    }

    #[test]
    fn counter_adds_and_saturates() {
        let c = Counter::new(on());
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        c.add(u64::MAX - 1);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_ignores_updates_when_disabled() {
        let flag = on();
        let c = Counter::new(Arc::clone(&flag));
        c.add(2);
        flag.store(false, Ordering::Relaxed);
        c.add(100);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(on(), &[0, 10, 100]);
        // Bucket layout: (..=0], (0..=10], (10..=100], (100..).
        for v in [0, 0] {
            h.record(v);
        }
        for v in [1, 10] {
            h.record(v);
        }
        for v in [11, 100] {
            h.record(v);
        }
        for v in [101, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
    }

    #[test]
    fn histogram_without_edges_is_a_single_overflow_bucket() {
        let h = Histogram::new(on(), &[]);
        h.record(0);
        h.record(123);
        assert_eq!(h.bucket_counts(), vec![2]);
    }

    #[test]
    fn counter_add_zero_registers_no_change_but_is_safe_at_saturation() {
        let c = Counter::new(on());
        c.add(0);
        assert_eq!(c.get(), 0);
        c.add(u64::MAX);
        c.add(0);
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX, "incr at ceiling stays saturated");
    }

    #[test]
    fn counter_reset_reopens_headroom_after_saturation() {
        let c = Counter::new(on());
        c.add(u64::MAX);
        c.reset();
        assert_eq!(c.get(), 0);
        c.add(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn histogram_single_edge_splits_at_the_boundary_exactly() {
        let h = Histogram::new(on(), &[64]);
        h.record(63);
        h.record(64);
        h.record(65);
        assert_eq!(
            h.bucket_counts(),
            vec![2, 1],
            "64 is inside (..=64], 65 overflows"
        );
    }

    #[test]
    fn histogram_edge_at_u64_max_leaves_an_empty_overflow_bucket() {
        let h = Histogram::new(on(), &[u64::MAX]);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts(), vec![1, 0]);
    }

    #[test]
    fn histogram_sum_saturates_across_many_records() {
        let h = Histogram::new(on(), &[1]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2, "count keeps advancing past sum saturation");
    }

    #[test]
    fn histogram_ignores_records_when_disabled() {
        let flag = on();
        let h = Histogram::new(Arc::clone(&flag), &[10]);
        h.record(5);
        flag.store(false, Ordering::Relaxed);
        h.record(5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket_counts(), vec![1, 0]);
    }

    #[test]
    fn merge_counts_matches_per_sample_records() {
        let edges = [0u64, 4, 16, 64];
        let live = Histogram::new(on(), &edges);
        let merged = Histogram::new(on(), &edges);
        let samples = [0u64, 1, 4, 5, 16, 17, 64, 65, 1000];
        let mut buckets = vec![0u64; edges.len() + 1];
        let mut sum = 0u64;
        for &v in &samples {
            live.record(v);
            buckets[edges.partition_point(|&e| e < v)] += 1;
            sum += v;
        }
        merged.merge_counts(&buckets, samples.len() as u64, sum);
        assert_eq!(merged.bucket_counts(), live.bucket_counts());
        assert_eq!(merged.count(), live.count());
        assert_eq!(merged.sum(), live.sum());
    }

    #[test]
    fn merge_counts_overflow_spill_and_disabled_guard() {
        let h = Histogram::new(on(), &[10]);
        // Source histogram with more buckets than ours: extras land in overflow.
        h.merge_counts(&[1, 2, 3, 4], 10, 100);
        assert_eq!(h.bucket_counts(), vec![1, 9]);

        let flag = on();
        let off = Histogram::new(Arc::clone(&flag), &[10]);
        flag.store(false, Ordering::Relaxed);
        off.merge_counts(&[5, 5], 10, 50);
        assert_eq!(off.count(), 0);
    }

    #[test]
    fn span_guard_records_on_drop_only_when_enabled() {
        let s = Arc::new(Span::new(on()));
        {
            let _g = s.start();
        }
        assert_eq!(s.count(), 1);

        let off = Arc::new(Span::new(Arc::new(AtomicBool::new(false))));
        {
            let _g = off.start();
        }
        assert_eq!(off.count(), 0);
        assert_eq!(off.total_ns(), 0);
    }

    #[test]
    fn span_record_ns_saturates() {
        let s = Span::new(on());
        s.record_ns(u64::MAX);
        s.record_ns(5);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_ns(), u64::MAX);
    }
}
