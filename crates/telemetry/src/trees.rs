//! Causal span trees: parent/child wall-clock spans with annotations.
//!
//! The flat [`crate::Span`] aggregates totals per name; trees keep the
//! *structure* — which shard-step ran inside which fleet epoch, which
//! engine run covered which fault activation. Each registry owns one
//! bounded [`SpanTree`]. Opening a span ([`crate::tree_span`]) pushes onto
//! a thread-local stack, so the innermost open span on the current thread
//! becomes the parent of the next one and the target of
//! [`crate::annotate`] — fault activations, epoch numbers, shard ids all
//! attach to the covering span without any plumbing through call sites.
//!
//! Spans carry wall-clock start offsets and durations, so the whole tree
//! is [`crate::Class::Timing`] data: it lands in the `timing` report
//! section and never enters a determinism diff. The node store is bounded;
//! overflow drops new spans and counts them (no silent caps).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use memutil::json::Json;

/// One node of a span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Node id (index into the registry's node store).
    pub id: u64,
    /// Parent node id; `None` for roots.
    pub parent: Option<u64>,
    /// Span name, conventionally `crate.phase` (two segments).
    pub name: String,
    /// Wall-clock offset from tree creation to span open, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration; `None` while the span is still open.
    pub dur_ns: Option<u64>,
    /// Annotations attached while the span was innermost, in order.
    pub notes: Vec<(String, u64)>,
}

impl SpanNode {
    /// The node as report JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut notes = Json::arr();
        for (key, value) in &self.notes {
            notes = notes.push(
                Json::obj()
                    .field("key", key.as_str())
                    .field("value", *value),
            );
        }
        Json::obj()
            .field("id", self.id)
            .field("parent", self.parent.map_or(Json::Null, Json::UInt))
            .field("name", self.name.as_str())
            .field("start_ns", self.start_ns)
            .field("dur_ns", self.dur_ns.map_or(Json::Null, Json::UInt))
            .field("notes", notes)
    }
}

#[derive(Default)]
struct Nodes {
    list: Vec<SpanNode>,
    generation: u64,
}

/// Bounded store of [`SpanNode`]s sharing the owning registry's enabled
/// flag.
pub struct SpanTree {
    enabled: Arc<AtomicBool>,
    anchor: Instant,
    capacity: usize,
    dropped: AtomicU64,
    nodes: Mutex<Nodes>,
}

thread_local! {
    /// Innermost-open-span stack of this thread: `(tree identity, node id,
    /// generation)` triples. Tree identity keys entries to one registry's
    /// tree so nested `install` scopes cannot cross-link spans.
    static SPAN_STACK: RefCell<Vec<(usize, u64, u64)>> = const { RefCell::new(Vec::new()) };
}

impl SpanTree {
    pub(crate) fn new(enabled: Arc<AtomicBool>, capacity: usize) -> SpanTree {
        SpanTree {
            enabled,
            anchor: Instant::now(),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            nodes: Mutex::new(Nodes::default()),
        }
    }

    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Nodes> {
        self.nodes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a span named `name` under this thread's innermost open span.
    /// Returns an inert guard when the registry is disabled or the node
    /// store is full (the drop is counted).
    pub fn open(self: &Arc<Self>, name: &str) -> TreeGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return TreeGuard { slot: None };
        }
        let identity = self.identity();
        let start_ns = self.anchor.elapsed().as_nanos() as u64;
        let mut nodes = self.lock();
        if nodes.list.len() >= self.capacity {
            drop(nodes);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return TreeGuard { slot: None };
        }
        let generation = nodes.generation;
        let id = nodes.list.len() as u64;
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _, g)| *t == identity && *g == generation)
                .map(|(_, id, _)| *id)
        });
        nodes.list.push(SpanNode {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            dur_ns: None,
            notes: Vec::new(),
        });
        drop(nodes);
        SPAN_STACK.with(|s| s.borrow_mut().push((identity, id, generation)));
        TreeGuard {
            slot: Some(OpenSlot {
                tree: Arc::clone(self),
                id,
                generation,
                opened: Instant::now(),
            }),
        }
    }

    /// Attaches `(key, value)` to this thread's innermost open span of
    /// this tree. No-op when disabled or no span is open here.
    pub fn annotate(self: &Arc<Self>, key: &str, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let identity = self.identity();
        let mut nodes = self.lock();
        let generation = nodes.generation;
        let top = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _, g)| *t == identity && *g == generation)
                .map(|(_, id, _)| *id)
        });
        if let Some(id) = top {
            if let Some(node) = nodes.list.get_mut(id as usize) {
                node.notes.push((key.to_string(), value));
            }
        }
    }

    fn close(&self, identity: usize, id: u64, generation: u64, dur_ns: u64) {
        let mut nodes = self.lock();
        if nodes.generation == generation {
            if let Some(node) = nodes.list.get_mut(id as usize) {
                node.dur_ns = Some(dur_ns);
            }
        }
        drop(nodes);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|(t, i, g)| *t == identity && *i == id && *g == generation)
            {
                stack.remove(pos);
            }
        });
    }

    /// All retained nodes, in open order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanNode> {
        self.lock().list.clone()
    }

    /// Nodes still open (no duration yet) — the "active spans" view the
    /// flight recorder captures.
    #[must_use]
    pub fn active(&self) -> Vec<SpanNode> {
        self.lock()
            .list
            .iter()
            .filter(|n| n.dur_ns.is_none())
            .cloned()
            .collect()
    }

    /// Spans rejected because the node store was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn clear(&self) {
        let mut nodes = self.lock();
        nodes.list.clear();
        nodes.generation += 1;
        self.dropped.store(0, Ordering::Relaxed);
    }
}

struct OpenSlot {
    tree: Arc<SpanTree>,
    id: u64,
    generation: u64,
    opened: Instant,
}

/// Guard returned by [`SpanTree::open`]; closes the node (recording its
/// duration) and pops the thread-local stack when dropped.
pub struct TreeGuard {
    slot: Option<OpenSlot>,
}

impl TreeGuard {
    /// An inert guard that records nothing on drop.
    #[must_use]
    pub fn disabled() -> TreeGuard {
        TreeGuard { slot: None }
    }
}

impl Drop for TreeGuard {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            let dur = slot.opened.elapsed().as_nanos() as u64;
            let identity = Arc::as_ptr(&slot.tree) as usize;
            slot.tree.close(identity, slot.id, slot.generation, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(capacity: usize) -> Arc<SpanTree> {
        Arc::new(SpanTree::new(Arc::new(AtomicBool::new(true)), capacity))
    }

    #[test]
    fn children_link_to_the_innermost_open_span() {
        let t = tree(16);
        {
            let _root = t.open("fleet.epoch");
            {
                let _child = t.open("fleet.shard_step");
                t.annotate("node", 3);
            }
            let _sibling = t.open("fleet.shard_step");
        }
        let nodes = t.snapshot();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].parent, None);
        assert_eq!(nodes[1].parent, Some(0));
        assert_eq!(nodes[2].parent, Some(0));
        assert_eq!(nodes[1].notes, vec![("node".to_string(), 3)]);
        assert!(nodes.iter().all(|n| n.dur_ns.is_some()), "all closed");
    }

    #[test]
    fn active_lists_only_open_spans() {
        let t = tree(16);
        let _root = t.open("memcon.run");
        {
            let _inner = t.open("memcon.quantum");
        }
        let active = t.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].name, "memcon.run");
    }

    #[test]
    fn overflow_drops_and_counts() {
        let t = tree(1);
        let _a = t.open("a");
        let _b = t.open("b");
        assert_eq!(t.snapshot().len(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn disabled_tree_is_inert() {
        let t = Arc::new(SpanTree::new(Arc::new(AtomicBool::new(false)), 8));
        {
            let _g = t.open("a");
            t.annotate("k", 1);
        }
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn guard_straddling_clear_does_not_corrupt_new_nodes() {
        let t = tree(8);
        let g = t.open("old");
        t.clear();
        let _fresh = t.open("fresh");
        drop(g);
        let nodes = t.snapshot();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].name, "fresh");
        assert!(
            nodes[0].dur_ns.is_none(),
            "stale guard must not close the reused node id"
        );
    }

    #[test]
    fn two_trees_do_not_cross_link() {
        let a = tree(8);
        let b = tree(8);
        let _ga = a.open("a.root");
        {
            let _gb = b.open("b.root");
        }
        assert_eq!(b.snapshot()[0].parent, None);
    }
}
