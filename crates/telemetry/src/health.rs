//! Declarative SLO monitor and flight recorder.
//!
//! A [`HealthMonitor`] holds a set of [`Rule`]s and is fed one
//! [`SamplePoint`] per epoch (by the fleet scheduler's post-barrier loop,
//! or any other deterministic driver). Rules read only counter *deltas*
//! and gauges from the point, so evaluation is jobs-invariant: the same
//! workload raises byte-identical alerts at `--jobs 1` and `--jobs 4`.
//!
//! When a rule fires, the monitor records a typed [`Alert`]. The caller
//! (see `xtask chaos health`) then captures a **flight recorder** dump via
//! [`flight_record`]: the last N epochs of time-series, the event-trace
//! tail, and the currently active span tree — the "what was happening
//! around the anomaly" bundle, written as a `memcon-flightrec/v1`
//! artifact.
//!
//! The default rule set ([`default_rules`]) watches the failure modes the
//! MEMCON paper's mitigation machinery can actually exhibit: escape burn,
//! HI-REF pinning pressure, recovery-backoff ceiling hits, tRRD/tFAW
//! stall ratio, PRIL buffer occupancy, and runaway WAL growth in the
//! durable state store.

use memutil::json::Json;

use crate::timeseries::SamplePoint;
use crate::Registry;

/// Schema identifier of flight-recorder dumps.
pub const FLIGHTREC_SCHEMA: &str = "memcon-flightrec/v1";

/// Alerts retained per monitor; later firings are counted but not stored.
const MAX_ALERTS: usize = 256;

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Degraded but operating; worth a look.
    Warning,
    /// SLO broken; capture a flight record.
    Critical,
}

impl Severity {
    /// Lowercase wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// What a rule tests on each sample point.
#[derive(Debug, Clone)]
pub enum Condition {
    /// The point's delta (or gauge) for `metric` is strictly above
    /// `threshold`.
    DeltaAbove {
        /// Counter-delta or gauge name read from the point.
        metric: String,
        /// Fire when the value is strictly above this.
        threshold: u64,
    },
    /// The sum of the `num` values divided by the `den` value is strictly
    /// above `ratio`. Quiet while `den` is zero.
    RatioAbove {
        /// Numerator names, summed (deltas or gauges).
        num: Vec<String>,
        /// Denominator name (delta or gauge).
        den: String,
        /// Fire when num/den is strictly above this.
        ratio: f64,
    },
}

/// One declarative SLO rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name, shown in alerts and the `HEALTH` scrape view.
    pub name: String,
    /// Severity of alerts this rule raises.
    pub severity: Severity,
    /// Fire condition, evaluated per sample point.
    pub condition: Condition,
}

impl Rule {
    /// A `DeltaAbove` rule.
    #[must_use]
    pub fn delta_above(name: &str, severity: Severity, metric: &str, threshold: u64) -> Rule {
        Rule {
            name: name.to_string(),
            severity,
            condition: Condition::DeltaAbove {
                metric: metric.to_string(),
                threshold,
            },
        }
    }

    /// A `RatioAbove` rule.
    #[must_use]
    pub fn ratio_above(
        name: &str,
        severity: Severity,
        num: &[&str],
        den: &str,
        ratio: f64,
    ) -> Rule {
        Rule {
            name: name.to_string(),
            severity,
            condition: Condition::RatioAbove {
                num: num.iter().map(|n| (*n).to_string()).collect(),
                den: den.to_string(),
                ratio,
            },
        }
    }
}

/// One rule firing at one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Epoch (sample tick) the rule fired at.
    pub epoch: u64,
    /// Name of the firing rule.
    pub rule: String,
    /// Severity copied from the rule.
    pub severity: Severity,
    /// Observed value (delta, gauge, or ratio).
    pub observed: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

impl Alert {
    /// The alert as report JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("epoch", self.epoch)
            .field("rule", self.rule.as_str())
            .field("severity", self.severity.as_str())
            .field("observed", self.observed)
            .field("threshold", self.threshold)
    }

    /// One-line rendering for the `HEALTH` scrape command.
    #[must_use]
    pub fn line(&self) -> String {
        format!(
            "alert {} {} {} observed={} threshold={}",
            self.epoch,
            self.severity.as_str(),
            self.rule,
            self.observed,
            self.threshold
        )
    }
}

/// The default MEMCON rule set (see module docs).
#[must_use]
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule::delta_above("escape-burn", Severity::Critical, "fleet.obs.escapes", 0),
        Rule::ratio_above(
            "hi-pin-pressure",
            Severity::Warning,
            &["fleet.gauge.pinned_pages"],
            "fleet.gauge.pages",
            0.25,
        ),
        Rule::delta_above(
            "backoff-ceiling",
            Severity::Warning,
            "fleet.obs.backoff_ceiling_hits",
            0,
        ),
        Rule::ratio_above(
            "stall-pressure",
            Severity::Warning,
            &["memsim.ctrl.trrd_stalls", "memsim.ctrl.tfaw_stalls"],
            "memsim.ctrl.acts",
            5.0,
        ),
        Rule::ratio_above(
            "pril-occupancy",
            Severity::Warning,
            &["fleet.gauge.pril_buffered"],
            "fleet.gauge.pril_capacity",
            0.9,
        ),
        // A healthy store journals a bounded trickle per epoch; a WAL
        // growing >16 MiB in one epoch means snapshot rotation stopped
        // pruning segments (or a record-emission loop is runaway).
        Rule::delta_above(
            "wal-growth",
            Severity::Warning,
            "store.wal.bytes",
            16 * 1024 * 1024,
        ),
    ]
}

/// Evaluates a rule set against per-epoch sample points, accumulating
/// typed alerts (bounded; overflow is counted).
#[derive(Debug)]
pub struct HealthMonitor {
    rules: Vec<Rule>,
    alerts: Vec<Alert>,
    dropped_alerts: u64,
    epochs_evaluated: u64,
}

impl HealthMonitor {
    /// A monitor over `rules`.
    #[must_use]
    pub fn new(rules: Vec<Rule>) -> HealthMonitor {
        HealthMonitor {
            rules,
            alerts: Vec::new(),
            dropped_alerts: 0,
            epochs_evaluated: 0,
        }
    }

    /// A monitor armed with [`default_rules`].
    #[must_use]
    pub fn with_default_rules() -> HealthMonitor {
        HealthMonitor::new(default_rules())
    }

    /// Appends `rule` to the set.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Evaluates every rule against `point`; returns how many fired.
    pub fn evaluate(&mut self, point: &SamplePoint) -> usize {
        self.epochs_evaluated += 1;
        let mut fired = 0;
        for rule in &self.rules {
            let hit = match &rule.condition {
                Condition::DeltaAbove { metric, threshold } => {
                    let observed = point.value(metric);
                    (observed > *threshold).then(|| (observed as f64, *threshold as f64))
                }
                Condition::RatioAbove { num, den, ratio } => {
                    let d = point.value(den);
                    if d == 0 {
                        None
                    } else {
                        let n: u64 = num.iter().map(|m| point.value(m)).sum();
                        let observed = n as f64 / d as f64;
                        (observed > *ratio).then_some((observed, *ratio))
                    }
                }
            };
            if let Some((observed, threshold)) = hit {
                fired += 1;
                if self.alerts.len() < MAX_ALERTS {
                    self.alerts.push(Alert {
                        epoch: point.tick,
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        observed,
                        threshold,
                    });
                } else {
                    self.dropped_alerts += 1;
                }
            }
        }
        fired
    }

    /// Recorded alerts, in firing order.
    #[must_use]
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The armed rules.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Alerts discarded after the retention cap filled.
    #[must_use]
    pub fn dropped_alerts(&self) -> u64 {
        self.dropped_alerts
    }

    /// How many sample points have been evaluated.
    #[must_use]
    pub fn epochs_evaluated(&self) -> u64 {
        self.epochs_evaluated
    }

    /// Epoch of the first recorded alert, if any fired yet.
    #[must_use]
    pub fn first_alert_epoch(&self) -> Option<u64> {
        self.alerts.first().map(|a| a.epoch)
    }

    /// Monitor state as JSON (used by the flight recorder and scrapes).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut alerts = Json::arr();
        for a in &self.alerts {
            alerts = alerts.push(a.to_json());
        }
        Json::obj()
            .field("rules_armed", self.rules.len() as u64)
            .field("epochs_evaluated", self.epochs_evaluated)
            .field("alerts", alerts)
            .field("dropped_alerts", self.dropped_alerts)
    }
}

/// Builds a flight-recorder dump: monitor state plus the last
/// `last_n_epochs` time-series points, the event-trace tail, and the
/// currently active spans of `registry`. The caller writes it to disk;
/// telemetry stays I/O-free.
#[must_use]
pub fn flight_record(registry: &Registry, monitor: &HealthMonitor, last_n_epochs: usize) -> Json {
    let mut points = Json::arr();
    for p in registry.timeseries_tail(last_n_epochs) {
        points = points.push(p.to_json());
    }

    let trace = registry.trace();
    let mut events = Json::arr();
    for e in trace.snapshot() {
        events = events.push(
            Json::obj()
                .field("seq", e.seq)
                .field("label", e.label.as_str())
                .field("value", e.value),
        );
    }

    let tree = registry.tree();
    let mut active = Json::arr();
    for n in tree.active() {
        active = active.push(n.to_json());
    }

    Json::obj()
        .field("schema", FLIGHTREC_SCHEMA)
        .field("health", monitor.to_json())
        .field(
            "timeseries",
            Json::obj()
                .field("last_n_epochs", last_n_epochs as u64)
                .field("points", points),
        )
        .field(
            "trace",
            Json::obj()
                .field("events", events)
                .field("recorded", trace.recorded())
                .field("dropped_events", trace.dropped()),
        )
        .field("active_spans", active)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(tick: u64, counters: &[(&str, u64)], gauges: &[(&str, u64)]) -> SamplePoint {
        SamplePoint {
            tick,
            counters: counters
                .iter()
                .map(|(n, v)| ((*n).to_string(), *v))
                .collect(),
            gauges: gauges.iter().map(|(n, v)| ((*n).to_string(), *v)).collect(),
        }
    }

    #[test]
    fn delta_rule_fires_strictly_above_threshold() {
        let mut m =
            HealthMonitor::new(vec![Rule::delta_above("r", Severity::Critical, "a.b.c", 2)]);
        assert_eq!(m.evaluate(&point(1, &[("a.b.c", 2)], &[])), 0);
        assert_eq!(m.evaluate(&point(2, &[("a.b.c", 3)], &[])), 1);
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].epoch, 2);
        assert_eq!(m.first_alert_epoch(), Some(2));
    }

    #[test]
    fn ratio_rule_is_quiet_on_zero_denominator() {
        let mut m = HealthMonitor::new(vec![Rule::ratio_above(
            "r",
            Severity::Warning,
            &["g.num"],
            "g.den",
            0.5,
        )]);
        assert_eq!(m.evaluate(&point(1, &[], &[("g.num", 9), ("g.den", 0)])), 0);
        assert_eq!(
            m.evaluate(&point(2, &[], &[("g.num", 9), ("g.den", 10)])),
            1
        );
        let a = &m.alerts()[0];
        assert!((a.observed - 0.9).abs() < 1e-12);
    }

    #[test]
    fn ratio_numerators_sum() {
        let mut m = HealthMonitor::new(vec![Rule::ratio_above(
            "r",
            Severity::Warning,
            &["x.stall.a", "x.stall.b"],
            "x.stall.den",
            1.0,
        )]);
        let fired = m.evaluate(&point(
            1,
            &[("x.stall.a", 3), ("x.stall.b", 4), ("x.stall.den", 5)],
            &[],
        ));
        assert_eq!(fired, 1);
    }

    #[test]
    fn alert_cap_counts_overflow() {
        let mut m = HealthMonitor::new(vec![Rule::delta_above("r", Severity::Warning, "a.b.c", 0)]);
        for tick in 0..(MAX_ALERTS as u64 + 5) {
            m.evaluate(&point(tick, &[("a.b.c", 1)], &[]));
        }
        assert_eq!(m.alerts().len(), MAX_ALERTS);
        assert_eq!(m.dropped_alerts(), 5);
    }

    #[test]
    fn default_rules_cover_the_documented_failure_modes() {
        let names: Vec<String> = default_rules().into_iter().map(|r| r.name).collect();
        for expected in [
            "escape-burn",
            "hi-pin-pressure",
            "backoff-ceiling",
            "stall-pressure",
            "pril-occupancy",
            "wal-growth",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn flight_record_bundles_health_series_trace_and_spans() {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter("a.b.c", crate::Class::Deterministic).add(3);
        r.sample_point(1, &[("g.x", 7)]);
        r.trace().record("evt", 1);
        let _open = r.tree().open("t.active");
        let mut m =
            HealthMonitor::new(vec![Rule::delta_above("r", Severity::Critical, "a.b.c", 0)]);
        let p = r.timeseries_points().pop().expect("point");
        m.evaluate(&p);
        let dump = flight_record(&r, &m, 8);
        assert_eq!(
            dump.get("schema").and_then(Json::as_str),
            Some(FLIGHTREC_SCHEMA)
        );
        let alerts = dump
            .get("health")
            .and_then(|h| h.get("alerts"))
            .expect("alerts");
        let Json::Arr(alerts) = alerts else {
            panic!("alerts not an array");
        };
        assert_eq!(alerts.len(), 1);
        let Some(Json::Arr(points)) = dump.get("timeseries").and_then(|t| t.get("points")) else {
            panic!("points missing");
        };
        assert_eq!(points.len(), 1);
        let Some(Json::Arr(active)) = dump.get("active_spans") else {
            panic!("active_spans missing");
        };
        assert_eq!(active.len(), 1);
    }
}
