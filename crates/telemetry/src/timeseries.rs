//! Epoch-aligned time-series sampler over the deterministic counter set.
//!
//! A [`crate::Registry`] owns one bounded [`TimeSeries`] ring. Callers at a
//! deterministic synchronization point — the fleet scheduler after its
//! per-epoch barrier, or a single engine at a quantum-window boundary —
//! take a [`SamplePoint`] via [`crate::Registry::sample_point`]. Each point
//! records the *delta* of every deterministic counter since the previous
//! sample (zero deltas are elided to keep points small) plus an explicit
//! set of caller-provided gauges (instantaneous values such as pinned-page
//! or PRIL-buffer occupancy that a monotone counter cannot express).
//!
//! Because samples are taken post-barrier in a deterministic order and the
//! sampled values derive purely from simulation state, the series is
//! [`crate::Class::Deterministic`] data: it lands in the `deterministic`
//! report section and must stay byte-identical across `--jobs` settings.
//! Sampling from concurrently stepping workers would interleave points
//! nondeterministically — don't; sample only at barriers or from
//! single-threaded drivers.
//!
//! The ring is bounded; overflow evicts the oldest point and increments a
//! `dropped_points` count surfaced in the report (no silent caps).

use std::collections::{BTreeMap, VecDeque};

use memutil::json::Json;

/// Schema identifier of the `timeseries` report section and of standalone
/// series artifacts.
pub const TIMESERIES_SCHEMA: &str = "memcon-timeseries/v1";

/// Default number of retained sample points.
pub(crate) const DEFAULT_TIMESERIES_CAPACITY: usize = 64;

/// One epoch- or quantum-aligned sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePoint {
    /// Caller-supplied tick (fleet epoch or engine quantum index).
    pub tick: u64,
    /// Non-zero deltas of deterministic counters since the previous
    /// sample, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Caller-supplied instantaneous gauges, in caller order.
    pub gauges: Vec<(String, u64)>,
}

impl SamplePoint {
    /// The delta recorded for `name` in this point (0 when elided), or
    /// the gauge value when `name` names a gauge.
    #[must_use]
    pub fn value(&self, name: &str) -> u64 {
        if let Some((_, v)) = self.counters.iter().find(|(n, _)| n == name) {
            return *v;
        }
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The point as report JSON: `{tick, counters: {…}, gauges: {…}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, delta) in &self.counters {
            counters.set(name, *delta);
        }
        let mut gauges = Json::obj();
        for (name, value) in &self.gauges {
            gauges.set(name, *value);
        }
        Json::obj()
            .field("tick", self.tick)
            .field("counters", counters)
            .field("gauges", gauges)
    }
}

/// Bounded ring of [`SamplePoint`]s plus the snapshot deltas are computed
/// against. Owned by a registry behind its mutex; not shared directly.
#[derive(Debug)]
pub(crate) struct TimeSeries {
    capacity: usize,
    last_snapshot: BTreeMap<String, u64>,
    points: VecDeque<SamplePoint>,
    dropped: u64,
}

impl TimeSeries {
    pub(crate) fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(1),
            last_snapshot: BTreeMap::new(),
            points: VecDeque::new(),
            dropped: 0,
        }
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.points.len() > self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
    }

    /// Folds a fresh deterministic-counter snapshot into a new point.
    pub(crate) fn sample(
        &mut self,
        tick: u64,
        now: Vec<(String, u64)>,
        gauges: &[(&str, u64)],
    ) -> SamplePoint {
        let mut counters = Vec::new();
        for (name, value) in now {
            let was = self.last_snapshot.get(&name).copied().unwrap_or(0);
            let delta = value.saturating_sub(was);
            self.last_snapshot.insert(name.clone(), value);
            if delta != 0 {
                counters.push((name, delta));
            }
        }
        let point = SamplePoint {
            tick,
            counters,
            gauges: gauges.iter().map(|(n, v)| ((*n).to_string(), *v)).collect(),
        };
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back(point.clone());
        point
    }

    pub(crate) fn points(&self) -> Vec<SamplePoint> {
        self.points.iter().cloned().collect()
    }

    pub(crate) fn last_points(&self, n: usize) -> Vec<SamplePoint> {
        let skip = self.points.len().saturating_sub(n);
        self.points.iter().skip(skip).cloned().collect()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `(tick, value)` pairs of one named counter-delta or gauge across
    /// the retained points.
    pub(crate) fn series(&self, name: &str) -> Vec<(u64, u64)> {
        self.points
            .iter()
            .map(|p| (p.tick, p.value(name)))
            .collect()
    }

    pub(crate) fn clear(&mut self) {
        self.last_snapshot.clear();
        self.points.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(n, v)| ((*n).to_string(), *v)).collect()
    }

    #[test]
    fn points_hold_deltas_not_totals() {
        let mut ts = TimeSeries::new(8);
        ts.sample(1, snap(&[("a", 10), ("b", 0)]), &[]);
        let p = ts.sample(2, snap(&[("a", 25), ("b", 3)]), &[]);
        assert_eq!(p.value("a"), 15);
        assert_eq!(p.value("b"), 3);
        assert_eq!(ts.points().len(), 2);
    }

    #[test]
    fn zero_deltas_are_elided_but_readable() {
        let mut ts = TimeSeries::new(8);
        ts.sample(1, snap(&[("a", 5)]), &[]);
        let p = ts.sample(2, snap(&[("a", 5)]), &[]);
        assert!(p.counters.is_empty());
        assert_eq!(p.value("a"), 0);
    }

    #[test]
    fn gauges_ride_along_verbatim() {
        let mut ts = TimeSeries::new(8);
        let p = ts.sample(3, snap(&[]), &[("g.pinned", 7), ("g.buf", 0)]);
        assert_eq!(p.value("g.pinned"), 7);
        assert_eq!(p.value("g.buf"), 0);
        assert_eq!(ts.series("g.pinned"), vec![(3, 7)]);
    }

    #[test]
    fn ring_overflow_counts_dropped_points() {
        let mut ts = TimeSeries::new(2);
        for tick in 0..5 {
            ts.sample(tick, snap(&[("a", tick)]), &[]);
        }
        assert_eq!(ts.points().len(), 2);
        assert_eq!(ts.dropped(), 3);
        assert_eq!(
            ts.points().iter().map(|p| p.tick).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn last_points_returns_the_tail() {
        let mut ts = TimeSeries::new(8);
        for tick in 0..6 {
            ts.sample(tick, snap(&[]), &[]);
        }
        let tail = ts.last_points(2);
        assert_eq!(tail.iter().map(|p| p.tick).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(ts.last_points(100).len(), 6);
    }

    #[test]
    fn clear_resets_baseline_and_dropped() {
        let mut ts = TimeSeries::new(1);
        ts.sample(1, snap(&[("a", 9)]), &[]);
        ts.sample(2, snap(&[("a", 9)]), &[]);
        assert_eq!(ts.dropped(), 1);
        ts.clear();
        assert_eq!(ts.dropped(), 0);
        let p = ts.sample(1, snap(&[("a", 9)]), &[]);
        assert_eq!(p.value("a"), 9, "baseline snapshot cleared too");
    }
}
